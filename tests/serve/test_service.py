"""QueryService semantics: swap atomicity, breaker degradation, writer
death and revival — driven in-process, no sockets."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.api import SearchEngine
from repro.index.store import GEN_PREFIX, IndexStore, pinned_generations
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueryService, ServiceConfig
from repro.serve.http import HttpError

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
    "slow brown dog naps while the fox watches",
]


def make_store(root) -> None:
    with SearchEngine.open(root) as engine:
        for i, text in enumerate(TEXTS):
            engine.add(text, title=f"doc{i}")
        engine.checkpoint()


def run(coro):
    return asyncio.run(coro)


def service(root, **kw) -> QueryService:
    kw.setdefault("registry", MetricsRegistry())
    config = kw.pop("config", None) or ServiceConfig(
        max_inflight=4, max_queue=8, deadline_ms=5000.0
    )
    return QueryService(root, config, **kw)


async def started(root, **kw) -> QueryService:
    svc = service(root, **kw)
    await svc.start()
    return svc


def test_search_payload_names_exactly_one_generation(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        payload = await svc.search("quick fox")
        assert payload["generation"] == svc.status()["generation"]
        assert payload["epoch"] == 1
        assert payload["results"]
        assert payload["results"][0]["title"].startswith("doc")
        assert payload["degraded"] is False
        assert payload["breaker"] == "closed"
        await svc.stop()

    run(main())


def test_added_documents_become_searchable_only_after_swap(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        before = await svc.search("zebra")
        assert before["results"] == []
        added = await svc.add_document("a zebra gallops past", title="zebra")
        assert added["doc_id"] == len(TEXTS)
        # Durable (WAL) but not yet visible: readers are immutable.
        assert (await svc.search("zebra"))["results"] == []
        first = svc.status()["generation"]
        swap = await svc.checkpoint_and_swap()
        assert swap["previous"] == first
        assert swap["generation"] != first
        assert svc.readers.epoch == 2
        after = await svc.search("zebra")
        assert after["generation"] == swap["generation"]
        assert [r["title"] for r in after["results"]] == ["zebra"]
        await svc.stop()

    run(main())


def test_inflight_search_finishes_on_its_pinned_old_generation(tmp_path):
    """The zero-torn-generation invariant, surgically: a search that
    pinned generation N completes on N with bit-identical scores even
    though the swap to N+1 happens while it is executing."""
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        reference = await svc.search("quick fox")

        release = threading.Event()
        entered = threading.Event()
        original = svc.readers.pin

        def blocking_pin():
            handle, epoch = original()
            entered.set()
            release.wait(timeout=5)  # hold the pin while the swap runs
            return handle, epoch

        svc.readers.pin = blocking_pin
        slow = asyncio.ensure_future(svc.search("quick fox"))
        await asyncio.get_running_loop().run_in_executor(
            None, entered.wait, 5
        )
        svc.readers.pin = original
        await svc.add_document("brand new quick fox data", title="new")
        swap_task = asyncio.ensure_future(svc.checkpoint_and_swap())
        await asyncio.sleep(0.01)
        release.set()
        old_payload = await slow
        swap = await swap_task

        assert old_payload["generation"] == reference["generation"]
        assert old_payload["results"] == reference["results"]  # bit-identical
        new_payload = await svc.search("quick fox")
        assert new_payload["generation"] == swap["generation"]
        assert new_payload["epoch"] == 2
        await svc.stop()

    run(main())


def test_swap_pins_protect_old_generation_from_gc(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        first = svc.status()["generation"]
        assert pinned_generations(root) == {first}
        await svc.add_document("extra doc for the next generation")
        swap = await svc.checkpoint_and_swap()
        # The old handle had no inflight requests: its pin is released
        # and only the new generation stays pinned.
        assert pinned_generations(root) == {swap["generation"]}
        gens = {p.name for p in root.iterdir()
                if p.name.startswith(GEN_PREFIX)}
        assert swap["generation"] in gens
        await svc.stop()

    run(main())


def test_concurrent_swap_requests_conflict(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        async with svc._swap_lock:
            with pytest.raises(HttpError) as info:
                await svc.checkpoint_and_swap()
            assert info.value.status == 409
        await svc.stop()

    run(main())


def test_breaker_trip_degrades_to_serial_and_recovers(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        config = ServiceConfig(
            max_inflight=4, max_queue=8, deadline_ms=5000.0,
            breaker_threshold=1, breaker_cooldown_s=30.0, shards=2,
        )
        svc = await started(root, config=config)
        reference = await svc.search("quick fox")
        assert reference["served_degraded_serial"] is False

        svc.breaker.record_failure()  # as an integrity failure would
        assert svc.breaker.state == "open"
        degraded = await svc.search("quick fox")
        assert degraded["served_degraded_serial"] is True
        assert degraded["shard_count"] == 1  # serial fallback engine
        # Degraded, not wrong: the serial path is score-consistent.
        assert degraded["results"] == reference["results"]
        assert svc.status()["breaker"] == "open"

        # Cooldown elapses -> one probe runs the full path and closes.
        svc.breaker._opened_at -= 31.0
        probe = await svc.search("quick fox")
        assert probe["served_degraded_serial"] is False
        assert svc.breaker.state == "closed"
        await svc.stop()

    run(main())


def test_integrity_failure_during_search_trips_the_breaker(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        handle = svc.readers.current
        original_engine = handle.engine

        class PoisonedEngine:
            def search(self, *a, **kw):
                from repro.errors import ScoreConsistencyError

                raise ScoreConsistencyError("scores diverged (injected)")

            def __getattr__(self, name):
                return getattr(original_engine, name)

        handle.engine = PoisonedEngine()
        with pytest.raises(HttpError) as info:
            await svc.search("quick fox")
        assert info.value.status == 500
        assert svc.breaker.state == "open"
        # Requests keep being answered -- on the degraded serial path.
        payload = await svc.search("quick fox")
        assert payload["served_degraded_serial"] is True
        assert payload["results"]
        handle.engine = original_engine
        await svc.stop()

    run(main())


def test_writer_death_leaves_readers_serving_and_revive_recovers(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)

        def boom():
            raise RuntimeError("writer process died")

        svc._writer.checkpoint = boom
        with pytest.raises(HttpError) as info:
            await svc.checkpoint_and_swap()
        assert info.value.status == 503
        assert not svc.writer_alive
        # Readers are untouched.
        assert (await svc.search("quick fox"))["results"]
        # Ingest refuses fast instead of hanging.
        with pytest.raises(HttpError) as info:
            await svc.add_document("while the writer is down")
        assert info.value.status == 503

        result = await svc.revive_writer()
        assert result["revived"] is True
        await svc.add_document("after revival all is well", title="ok")
        swap = await svc.checkpoint_and_swap()
        payload = await svc.search("revival")
        assert payload["generation"] == swap["generation"]
        assert [r["title"] for r in payload["results"]] == ["ok"]
        assert IndexStore.open(root).verify()["doc_count"] == len(TEXTS) + 1
        await svc.stop()

    run(main())


def test_draining_service_refuses_new_work(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        svc.draining = True
        for call in (
            svc.search("quick"),
            svc.explain("quick"),
            svc.add_document("nope"),
            svc.checkpoint_and_swap(),
        ):
            with pytest.raises(HttpError) as info:
                await call
            assert info.value.status == 503
        assert svc.status()["ready"] is False
        svc.draining = False
        await svc.stop()

    run(main())


def test_deadline_expiry_in_queue_is_504_and_bad_query_is_400(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        config = ServiceConfig(max_inflight=1, max_queue=4,
                               deadline_ms=5000.0)
        svc = await started(root, config=config)
        await svc.admission.admit()  # occupy the only slot
        with pytest.raises(HttpError) as info:
            await svc.search("quick fox", deadline_ms=30.0)
        assert info.value.status == 504
        svc.admission.exit()
        with pytest.raises(HttpError) as info:
            await svc.search('"unterminated phrase')
        assert info.value.status == 400
        with pytest.raises(HttpError) as info:
            await svc.search("quick", scheme="no-such-scheme")
        assert info.value.status == 400
        await svc.stop()

    run(main())


def test_explain_reports_the_current_generation_plan(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = await started(root)
        payload = await svc.explain("quick fox")
        assert payload["generation"] == svc.status()["generation"]
        assert "plan" in payload and payload["plan"]
        await svc.stop()

    run(main())
