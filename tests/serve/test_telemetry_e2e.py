"""End-to-end request telemetry over real sockets.

The tentpole acceptance tests: a slow query is findable in
``/debug/slow`` by its ``X-Request-Id`` with the span sum within 10% of
the measured wall time; correlation ids round-trip client -> server ->
engine -> query log; ``/debug/requests`` shows live phase state;
``repro slow`` turns captured wide events into a per-phase attribution.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.api import SearchEngine
from repro.cli import main
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.qlog import read_log
from repro.serve import HttpServer, QueryService, ServiceConfig
from repro.serve.loadgen import _Client, run_loadgen

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
    "san francisco fault line stories quick fox",
]


def make_store(root) -> None:
    with SearchEngine.open(root) as engine:
        for i, text in enumerate(TEXTS):
            engine.add(text, title=f"doc{i}")
        engine.checkpoint()


async def start_server(root, config=None) -> HttpServer:
    service = QueryService(
        root,
        config or ServiceConfig(max_inflight=4, max_queue=16,
                                deadline_ms=5000.0),
        registry=MetricsRegistry(),
    )
    server = HttpServer(service, registry=service.registry)
    await server.start()
    return server


def slow_execute_wrapper(engine, sleep_s: float):
    """Patch ``engine.search`` to burn *sleep_s* inside the execute span,
    simulating a genuinely slow execution phase."""
    original = engine.search

    def slow_search(*args, **kwargs):
        with telemetry.span("execute"):
            time.sleep(sleep_s)
        return original(*args, **kwargs)

    engine.search = slow_search


# -- the headline acceptance test -------------------------------------------


def test_slow_query_findable_by_request_id_with_tight_span_sum(tmp_path):
    root = tmp_path / "store"
    make_store(root)
    rid = "e2e-slow-0001"

    async def run():
        server = await start_server(root)
        slow_execute_wrapper(
            server.service.readers.current.engine, sleep_s=0.12
        )
        client = _Client(server.host, server.port)
        try:
            status, body, headers = await client.request(
                "/search?q=quick+fox&top_k=3",
                headers={"X-Request-Id": rid},
            )
            assert status == 200
            # The id round-trips: response header AND payload carry it.
            assert headers["x-request-id"] == rid
            assert body["request_id"] == rid
            status, slow, _ = await client.request("/debug/slow?n=8")
            assert status == 200
            return slow
        finally:
            await client.close()
            await server.stop()

    slow = asyncio.run(run())
    events = [e for e in slow["events"] if e["request_id"] == rid]
    assert events, f"request {rid} not captured: {slow}"
    event = events[0]
    # The slow phase dominates and the timeline accounts for the wall:
    # attributed spans must cover >= 90% of the measured wall time.
    assert event["phase_ms"]["execute"] >= 120.0
    span_sum = sum(event["phase_ms"].values())
    assert span_sum >= 0.9 * event["wall_ms"], event
    assert event["unattributed_ms"] <= 0.1 * event["wall_ms"], event
    # The full pipeline timeline is present, not just the slow phase.
    for phase in ("queue_wait", "parse", "optimize", "serialize"):
        assert phase in event["phase_ms"], event["phase_ms"]
    assert event["status"] == 200
    assert event["query"] == "quick fox"


# -- correlation ids --------------------------------------------------------


def test_request_ids_generated_when_missing_or_hostile(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            _, body, headers = await client.request("/search?q=quick")
            generated = headers["x-request-id"]
            assert len(generated) == 26  # minted ULID-style id
            assert body["request_id"] == generated
            # A hostile header is rejected and replaced, never echoed.
            _, _, headers = await client.request(
                "/search?q=quick",
                headers={"X-Request-Id": "bad id with spaces"},
            )
            assert headers["x-request-id"] != "bad id with spaces"
            assert len(headers["x-request-id"]) == 26
            # Non-search routes get ids too.
            _, _, headers = await client.request("/healthz")
            assert len(headers["x-request-id"]) == 26
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_loadgen_ids_round_trip_into_the_query_log(tmp_path):
    """Satellite 2: every accepted request's client-generated id lands in
    the service's query log, joinable with /debug/slow."""
    root = tmp_path / "store"
    make_store(root)
    qlog_path = tmp_path / "qlog.jsonl"

    async def run():
        config = ServiceConfig(
            max_inflight=4, max_queue=32, deadline_ms=5000.0,
            qlog_path=str(qlog_path), qlog_sample_rate=1.0,
        )
        server = await start_server(root, config)
        try:
            return await run_loadgen(
                server.host, server.port, requests=16, concurrency=4
            )
        finally:
            await server.stop()

    report = asyncio.run(run())
    assert report.ok == 16, report.summary()
    assert report.id_mismatches == 0
    assert report.p95_ms >= report.p50_ms
    records = read_log(qlog_path)
    logged_ids = {r["request_id"] for r in records}
    # Every accepted request's id is in the log (nothing shed here).
    assert report.request_ids <= logged_ids
    for record in records:
        assert record["request_id"].startswith("lg-")
        assert "execute" in record["phase_ms"]


# -- live debug endpoints ---------------------------------------------------


def test_debug_requests_shows_inflight_phase(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root)
        slow_execute_wrapper(
            server.service.readers.current.engine, sleep_s=0.3
        )
        search_client = _Client(server.host, server.port)
        debug_client = _Client(server.host, server.port)
        try:
            pending = asyncio.ensure_future(
                search_client.request(
                    "/search?q=quick+fox",
                    headers={"X-Request-Id": "inflight-1"},
                )
            )
            await asyncio.sleep(0.1)  # request is mid-execute
            status, body, _ = await debug_client.request("/debug/requests")
            assert status == 200
            views = {v["request_id"]: v for v in body["inflight"]}
            assert "inflight-1" in views, body
            view = views["inflight-1"]
            assert view["current_phase"] == "execute"
            assert view["age_ms"] >= 90.0
            assert view["query"] == "quick fox"
            status, _, _ = await pending
            assert status == 200
        finally:
            await search_client.close()
            await debug_client.close()
            await server.stop()

    asyncio.run(run())


def test_status_carries_rolling_latency_summary(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            for _ in range(5):
                status, _, _ = await client.request("/search?q=quick+fox")
                assert status == 200
            status, body, _ = await client.request("/status")
            assert status == 200
            return body["telemetry"]
        finally:
            await client.close()
            await server.stop()

    summary = asyncio.run(run())
    assert summary["requests"] == 5
    assert summary["ok"] == 5
    assert summary["shed_rate"] == 0.0
    assert summary["latency_ms"]["p50"] is not None
    assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]
    assert summary["slow_captured"] == 5


def test_debug_slow_validates_n_and_telemetry_off_goes_503(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        # Telemetry on: bad ?n= is a client error.
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            status, _, _ = await client.request("/debug/slow?n=0")
            assert status == 400
        finally:
            await client.close()
            await server.stop()

        # Telemetry off: debug endpoints refuse, search still works and
        # ids still round-trip (generation is independent of the hub).
        config = ServiceConfig(max_inflight=4, max_queue=16,
                               deadline_ms=5000.0, telemetry=False)
        server = await start_server(root, config)
        client = _Client(server.host, server.port)
        try:
            status, _, _ = await client.request("/debug/requests")
            assert status == 503
            status, _, _ = await client.request("/debug/slow")
            assert status == 503
            status, body, headers = await client.request(
                "/search?q=quick", headers={"X-Request-Id": "still-works"}
            )
            assert status == 200
            assert headers["x-request-id"] == "still-works"
            assert body["request_id"] is None  # no telemetry context
            status, body, _ = await client.request("/status")
            assert status == 200 and body["telemetry"] is None
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_profile_endpoint_is_gated_and_returns_collapsed_stacks(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        # Disabled by default: 403 names the enabling flag.
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            status, body, _ = await client.request("/debug/profile")
            assert status == 403
            assert "--enable-profile" in body["error"]
        finally:
            await client.close()
            await server.stop()

        config = ServiceConfig(
            max_inflight=4, max_queue=16, deadline_ms=5000.0,
            profile_endpoint=True, profile_max_seconds=0.2,
        )
        server = await start_server(root, config)
        client = _Client(server.host, server.port)
        try:
            status, _, _ = await client.request("/debug/profile?seconds=0")
            assert status == 400
            # seconds is capped to profile_max_seconds (0.2), so this
            # returns promptly despite asking for 60s.
            started = time.monotonic()
            status, body, headers = await client.request(
                "/debug/profile?seconds=60"
            )
            elapsed = time.monotonic() - started
            assert status == 200
            assert elapsed < 5.0
            assert headers["content-type"].startswith("text/plain")
            text = body["raw"]
            assert text.startswith("# sampling profile: 0.200s")
            return text
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


# -- the `repro slow` CLI ---------------------------------------------------


def test_cli_slow_attributes_phases_from_url_and_file(tmp_path, capsys):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root)
        slow_execute_wrapper(
            server.service.readers.current.engine, sleep_s=0.05
        )
        client = _Client(server.host, server.port)
        try:
            for i in range(6):
                status, _, _ = await client.request(
                    f"/search?q=quick+fox&top_k={i + 1}"
                )
                assert status == 200
            _, slow_body, _ = await client.request("/debug/slow")
            # URL mode fetches /debug/slow from the live server; main()
            # is synchronous, so run it off the event loop.
            loop = asyncio.get_running_loop()
            url = f"http://{server.host}:{server.port}"
            rc = await loop.run_in_executor(
                None, lambda: main(["slow", url, "-n", "8"])
            )
            assert rc == 0
            return slow_body
        finally:
            await client.close()
            await server.stop()

    slow_body = asyncio.run(run())
    out = capsys.readouterr().out
    assert "6 events" in out
    assert "execute" in out and "p99" in out

    # File mode: a saved /debug/slow response, JSON report out.
    saved = tmp_path / "slow.json"
    saved.write_text(json.dumps(slow_body))
    assert main(["slow", str(saved), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["events"] == 6
    top = report["attribution"][0]
    assert top["phase"] == "execute"  # the injected sleep dominates
    assert top["share"] > 0.5
    assert report["phases"]["execute"]["p99"] >= 50.0

    # JSONL mode: one wide event per line.
    jsonl = tmp_path / "slow.jsonl"
    jsonl.write_text(
        "\n".join(json.dumps(e) for e in slow_body["events"]) + "\n"
    )
    assert main(["slow", str(jsonl)]) == 0
    assert "execute" in capsys.readouterr().out

    # A missing file is a clean error, not a traceback.
    assert main(["slow", str(tmp_path / "absent.json")]) == 2
    assert "no such file" in capsys.readouterr().err
