"""The ops console as a pure function: one snapshot in, one screen out.

``render`` never touches a socket, so these tests pin the exact
dashboard an operator sees — ready state, traffic counters, latency
percentiles, SLO budget bars — from fabricated snapshots.  ``run_top``
is driven with a monkeypatched ``poll`` for the loop/exit behavior; the
real-socket path is covered by the service e2e tests.
"""

from __future__ import annotations

import io
import json

from repro.serve import console
from repro.serve.console import _bar, render, run_top


def snapshot(**overrides) -> dict:
    base = {
        "polled_at": 0.0,
        "url": "http://localhost:8080",
        "status": {
            "ready": True,
            "generation": 3,
            "epoch": 7,
            "doc_count": 1200,
            "writer_alive": True,
            "breaker": "closed",
            "inflight": 2,
            "queued": 1,
            "admitted": 5000,
            "shed": 12,
            "admission_timeouts": 3,
            "swaps": 2,
            "telemetry": {
                "requests": 480,
                "window_s": 300.0,
                "shed_rate": 0.025,
                "error_rate": 0.0,
                "latency_ms": {"p50": 4.2, "p95": 11.0, "p99": 42.7},
            },
            "slo": None,
            "spans": {"ring": 17, "capacity": 256, "written": None},
        },
        "slo": None,
        "metrics": {
            "graft_plan_cache_hits_total": {
                "kind": "counter", "help": "",
                "samples": [{"labels": {}, "value": 90.0}],
            },
            "graft_plan_cache_misses_total": {
                "kind": "counter", "help": "",
                "samples": [{"labels": {}, "value": 10.0}],
            },
        },
    }
    base.update(overrides)
    return base


SLO_REPORT = {
    "enabled": True,
    "observed": 480,
    "breaching": True,
    "fast_burn_breaching": True,
    "shed_pressure": True,
    "objectives": [
        {
            "name": "latency_p99_50ms",
            "kind": "latency",
            "state": "breaching",
            "measured_ms": 81.4,
            "windows": {"fast": {"long_burn_rate": 22.5}},
            "budget": {"remaining_fraction": 0.1},
        },
        {
            "name": "availability_999",
            "kind": "availability",
            "state": "ok",
            "windows": {"fast": {"long_burn_rate": 0.0}},
            "budget": {"remaining_fraction": 1.0},
        },
    ],
}


def test_render_headline_and_traffic():
    screen = render(snapshot(), color=False)
    assert "READY" in screen
    assert "gen=3" in screen and "docs=1200" in screen
    assert "inflight=2" in screen and "shed=12" in screen
    assert "p50=    4.20ms" in screen
    assert "p99=   42.70ms" in screen
    assert "plan_cache= 90.0%" in screen
    assert "ring=17/256" in screen


def test_render_not_ready_and_missing_sections():
    snap = snapshot()
    snap["status"]["ready"] = False
    snap["status"]["telemetry"] = None
    snap["status"]["spans"] = None
    snap["metrics"] = {}
    screen = render(snap, color=False)
    assert "NOT READY" in screen
    assert "(telemetry disabled)" in screen
    assert "plan_cache=    -" in screen
    assert "no objectives configured" in screen
    assert "spans" not in screen.splitlines()[-1]


def test_render_slo_budget_bars_and_pressure():
    screen = render(snapshot(slo=SLO_REPORT), color=False)
    assert "latency_p99_50ms" in screen
    assert "BREACHING" in screen
    assert "budget  10.0%" in screen
    assert "burn(fast)=22.50" in screen
    assert "measured=81.40ms" in screen
    assert "availability_999" in screen
    assert "budget 100.0%" in screen
    assert "early shedding ARMED" in screen


def test_render_color_codes_only_when_asked():
    plain = render(snapshot(slo=SLO_REPORT), color=False)
    colored = render(snapshot(slo=SLO_REPORT), color=True)
    assert "\x1b[" not in plain
    assert "\x1b[31m" in colored  # breaching objective painted red


def test_bar_geometry():
    assert _bar(1.0) == "#" * 20
    assert _bar(0.0) == "-" * 20
    assert _bar(0.5) == "#" * 10 + "-" * 10
    assert _bar(2.0) == "#" * 20   # clamped
    assert _bar(-1.0) == "-" * 20


def test_run_top_once_json_emits_the_raw_snapshot(monkeypatch):
    snap = snapshot(slo=SLO_REPORT)
    monkeypatch.setattr(console, "poll", lambda base, timeout_s=5.0: snap)
    out = io.StringIO()
    code = run_top("localhost:8080", once=True, as_json=True, out=out)
    assert code == 0
    parsed = json.loads(out.getvalue())
    assert parsed["status"]["generation"] == 3
    assert parsed["slo"]["breaching"] is True


def test_run_top_iterations_bound_the_loop(monkeypatch):
    calls = []

    def fake_poll(base, timeout_s=5.0):
        calls.append(base)
        return snapshot()

    monkeypatch.setattr(console, "poll", fake_poll)
    out = io.StringIO()
    code = run_top("http://h:1", interval_s=0.0, iterations=2, out=out,
                   color=False)
    assert code == 0
    assert len(calls) == 2
    assert out.getvalue().count("repro top") == 2


def test_run_top_unreachable_service_exits_2(monkeypatch, capsys):
    def dead_poll(base, timeout_s=5.0):
        raise ConnectionError(f"cannot reach {base}/status")

    monkeypatch.setattr(console, "poll", dead_poll)
    assert run_top("localhost:9", once=True, out=io.StringIO()) == 2
    assert "cannot reach" in capsys.readouterr().err
