"""Hot swap while a process-parallel reader generation is live.

The worker-pool lifecycle is tied to the generation that published the
shared-memory blob: ``ServiceConfig(executor="process")`` must pre-build
the pool off the request path, serve queries through it, and — on
``checkpoint_and_swap`` — retire the old generation's workers and
shared segment exactly when its last pin drains, while the new
generation answers from its own pool.  Scores must match the serial
engine across the whole swap (the packed process path is score-exact).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import SearchEngine
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueryService, ServiceConfig

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
    "slow brown dog naps while the fox watches",
]


def make_store(root) -> None:
    with SearchEngine.open(root) as engine:
        for i, text in enumerate(TEXTS):
            engine.add(text, title=f"doc{i}")
        engine.checkpoint()


def run(coro):
    return asyncio.run(coro)


def proc_service(root) -> QueryService:
    config = ServiceConfig(
        max_inflight=4, max_queue=8, deadline_ms=5000.0,
        shards=2, executor="process",
    )
    return QueryService(root, config, registry=MetricsRegistry())


def test_swap_retires_old_pool_and_new_pool_serves(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = proc_service(root)
        await svc.start()
        try:
            first = svc.readers.current
            assert first is not None
            old_pool = first.engine._procpool
            if old_pool is None:
                pytest.skip("process pool unavailable on this platform")
            # The pool is pre-built at generation load, before any query.
            assert not old_pool.closed

            payload = await svc.search("quick fox")
            assert payload["results"]
            assert first.engine.search("quick fox").executor == "process"

            await svc.add_document(
                "another quick fox joins the dog show", title="new"
            )
            await svc.checkpoint_and_swap()

            # No pins remained, so the retired generation's workers and
            # shared segment are gone the moment the swap completes.
            assert old_pool.closed
            second = svc.readers.current
            assert second is not first
            new_pool = second.engine._procpool
            assert new_pool is not None and new_pool is not old_pool
            assert not new_pool.closed

            # The new generation serves through its own pool, and sees
            # the newly ingested document.
            payload = await svc.search("quick fox")
            assert any(r["title"] == "new" for r in payload["results"])
            assert second.engine.search("quick fox").executor == "process"
        finally:
            await svc.stop()

    run(main())


def test_process_scores_match_serial_reference(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        svc = proc_service(root)
        await svc.start()
        try:
            handle = svc.readers.current
            if handle.engine._procpool is None:
                pytest.skip("process pool unavailable on this platform")
            out = handle.engine.search("quick (fox | dog)")
            ref = handle.serial_engine.search("quick (fox | dog)")
            assert out.executor == "process"
            assert [(r.doc_id, r.score) for r in out.results] == \
                [(r.doc_id, r.score) for r in ref.results]
        finally:
            await svc.stop()

    run(main())
