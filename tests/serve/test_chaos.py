"""Chaos harness: kill the writer at every checkpoint crash point while
searches are inflight; readers must never observe a torn generation.

Same discovery idiom as ``tests/index/test_store_faults.py``: run the
service scenario once with a recording injector to learn the ordered
crash-point schedule, slice it to the checkpoint phase, then re-run the
scenario once per point with the injector set to die exactly there.
After every crash:

* every search issued concurrently with the dying checkpoint completes
  with status 200 on the *old* generation, scores bit-identical to a
  pre-crash reference — no request sees a blend of generations;
* the service stays ready with the writer marked down; and
* :meth:`QueryService.revive_writer` repairs the store (torn WAL tail
  truncated, dead-checkpoint residue collected), after which ingest,
  checkpoint and swap work end to end and the store passes a full
  ``verify()``.

Slow/poisoned queries ride along: one request in each inflight batch
carries a tiny deadline (exercising partial/timeout semantics under
crash pressure) and must degrade or time out cleanly, never 500.
"""

from __future__ import annotations

import asyncio
import pathlib
import shutil
import tempfile

import pytest

from repro.api import SearchEngine
from repro.index.store import (
    IndexStore,
    SimulatedCrash,
    StoreFaultInjector,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueryService, ServiceConfig
from repro.serve.http import HttpError

BASE_TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
]
NEW_TEXT = "fresh quick fox document arriving over the wal"
QUERY = "quick fox"


def build_base(root: pathlib.Path) -> None:
    with SearchEngine.open(root) as engine:
        for i, text in enumerate(BASE_TEXTS):
            engine.add(text, title=f"doc{i}")
        engine.checkpoint()


def make_config() -> ServiceConfig:
    return ServiceConfig(max_inflight=4, max_queue=8, deadline_ms=5000.0)


async def scenario(root, inj) -> tuple[QueryService, int]:
    """Start the service (faulted writer), ingest one doc, note the
    recorder position, then checkpoint.  Returns (service, index of the
    first checkpoint-phase crash point)."""
    svc = QueryService(
        root, make_config(), store_faults=inj, registry=MetricsRegistry()
    )
    await svc.start()
    await svc.add_document(NEW_TEXT, title="doc3")
    checkpoint_from = len(inj.points)
    await svc.checkpoint_and_swap()
    return svc, checkpoint_from


def discover_schedule() -> list[tuple[str, int]]:
    """The (point, occurrence) pairs hit during the checkpoint phase."""
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="graft-serve-chaos-"))
    try:
        root = tmp / "store"
        build_base(root)
        recorder = StoreFaultInjector()

        async def main():
            svc, checkpoint_from = await scenario(root, recorder)
            await svc.stop()
            return checkpoint_from

        checkpoint_from = asyncio.run(main())
        seen: dict[str, int] = {}
        schedule = []
        for index, point in enumerate(recorder.points):
            seen[point] = seen.get(point, 0) + 1
            if index >= checkpoint_from:
                schedule.append((point, seen[point]))
        return schedule
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


SCHEDULE = discover_schedule()


def test_checkpoint_phase_has_a_meaningful_schedule():
    assert len(SCHEDULE) >= 10
    ops = {point.split(":")[1] for point, _ in SCHEDULE}
    assert {"write", "fsync", "rename"} <= ops
    assert any("MANIFEST" in point and "rename" in point
               for point, _ in SCHEDULE)


@pytest.mark.parametrize(
    "point,occurrence",
    SCHEDULE,
    ids=[f"{p}#{k}" for p, k in SCHEDULE],
)
def test_writer_killed_at_crash_point_never_tears_a_reader(
    tmp_path, point, occurrence
):
    root = tmp_path / "store"
    build_base(root)
    inj = StoreFaultInjector(crash_at=point, crash_on_hit=occurrence)

    async def main():
        svc = QueryService(
            root, make_config(), store_faults=inj,
            registry=MetricsRegistry(),
        )
        await svc.start()
        reference = await svc.search(QUERY)
        old_generation = reference["generation"]
        await svc.add_document(NEW_TEXT, title="doc3")

        # Inflight batch racing the dying checkpoint; one poisoned
        # (near-zero deadline) request rides along.
        searches = [
            asyncio.ensure_future(svc.search(QUERY)) for _ in range(4)
        ]
        poisoned = asyncio.ensure_future(
            svc.search(QUERY, deadline_ms=0.001)
        )
        with pytest.raises(HttpError) as info:
            await svc.checkpoint_and_swap()
        assert info.value.status == 503
        assert inj.fired, "the targeted crash point was never reached"
        assert isinstance(svc._writer_fault, SimulatedCrash)

        # 1. No reader observed a torn generation: every concurrent
        #    search succeeded on the old generation, bit-identically.
        for payload in await asyncio.gather(*searches):
            assert payload["generation"] == old_generation
            assert payload["results"] == reference["results"]
        # The poisoned query degraded or timed out cleanly -- never a
        # torn read, never an internal error.
        try:
            slow = await poisoned
            assert slow["degraded"] is True or slow["results"] is not None
        except HttpError as exc:
            assert exc.status == 504

        # 2. The service stays ready on the old generation; the writer
        #    is reported down.
        status = svc.status()
        assert status["ready"] is True
        assert status["writer_alive"] is False
        assert status["generation"] == old_generation
        after = await svc.search(QUERY)
        assert after["results"] == reference["results"]

        # 3. Revival repairs the store exactly like a process restart.
        revived = await svc.revive_writer()
        assert revived["revived"] is True
        # The WAL'd doc3 survived the crash if its add() had returned
        # (it had -- adds are durable on return).
        await svc.add_document("post recovery document", title="doc4")
        swap = await svc.checkpoint_and_swap()
        payload = await svc.search(QUERY)
        assert payload["generation"] == swap["generation"]
        new_docs = await svc.search("fresh wal")
        assert any(r["title"] == "doc3" for r in new_docs["results"])

        report = IndexStore.open(root).verify()
        assert report["wal_torn_bytes"] == 0
        assert report["doc_count"] == len(BASE_TEXTS) + 2
        await svc.stop()

    asyncio.run(main())
