"""HTTP/1.1 framing: parsing, bounds, and serialization."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpError,
    Request,
    read_request,
    response_bytes,
)


def parse(raw: bytes) -> Request | None:
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


def test_parses_request_line_query_and_headers():
    req = parse(
        b"GET /search?q=quick%20fox&top_k=5 HTTP/1.1\r\n"
        b"Host: localhost\r\nX-Thing: v\r\n\r\n"
    )
    assert req.method == "GET"
    assert req.path == "/search"
    assert req.query == {"q": "quick fox", "top_k": "5"}
    assert req.headers["host"] == "localhost"
    assert req.headers["x-thing"] == "v"
    assert req.keep_alive  # HTTP/1.1 default


def test_clean_eof_is_none_and_truncated_head_is_400():
    assert parse(b"") is None
    with pytest.raises(HttpError) as info:
        parse(b"GET / HTTP/1.1\r\nHost: x")
    assert info.value.status == 400


def test_malformed_request_line_and_version():
    with pytest.raises(HttpError) as info:
        parse(b"GARBAGE\r\n\r\n")
    assert info.value.status == 400
    with pytest.raises(HttpError) as info:
        parse(b"GET / HTTP/9.9\r\n\r\n")
    assert info.value.status == 400


def test_oversized_head_is_413():
    big = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * (32 * 1024) + b"\r\n\r\n"
    with pytest.raises(HttpError) as info:
        parse(big)
    assert info.value.status == 413


def test_chunked_transfer_encoding_is_501():
    with pytest.raises(HttpError) as info:
        parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
    assert info.value.status == 501


def test_body_via_content_length_and_bad_lengths():
    req = parse(
        b"POST /add HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody"
    )
    assert req.body == b"body"
    with pytest.raises(HttpError):
        parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    with pytest.raises(HttpError):
        parse(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
    with pytest.raises(HttpError) as info:
        parse(
            b"POST / HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
    assert info.value.status == 413
    with pytest.raises(HttpError):  # body shorter than declared
        parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")


def test_keep_alive_semantics():
    req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not req.keep_alive
    req = parse(b"GET / HTTP/1.0\r\n\r\n")
    assert not req.keep_alive
    req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
    assert req.keep_alive


def test_typed_param_helpers():
    req = parse(
        b"GET /s?i=3&f=0.5&b=true&bad=xyz HTTP/1.1\r\n\r\n"
    )
    assert req.int_param("i", 0) == 3
    assert req.float_param("f", None) == 0.5
    assert req.bool_param("b", False) is True
    assert req.int_param("missing", 7) == 7
    for call in (
        lambda: req.int_param("bad", 0),
        lambda: req.float_param("bad", None),
        lambda: req.bool_param("bad", False),
    ):
        with pytest.raises(HttpError) as info:
            call()
        assert info.value.status == 400


def test_response_bytes_roundtrip_and_content_type_override():
    raw = response_bytes(200, b'{"ok": true}', keep_alive=False)
    text = raw.decode("latin-1")
    assert text.startswith("HTTP/1.1 200 OK\r\n")
    assert "Content-Length: 12" in text
    assert "Connection: close" in text
    assert text.endswith('{"ok": true}')
    prom = response_bytes(
        200, b"metric 1\n",
        extra_headers={"Content-Type": "text/plain"},
    ).decode("latin-1")
    assert "Content-Type: text/plain" in prom
    assert prom.count("Content-Type") == 1
    shed = response_bytes(
        503, b"{}", extra_headers={"Retry-After": "0.700"}
    ).decode("latin-1")
    assert "Retry-After: 0.700" in shed
