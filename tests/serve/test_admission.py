"""Admission control, load shedding, and the circuit breaker in isolation."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import (
    AdmissionController,
    AdmissionTimeout,
    CircuitBreaker,
    ServiceConfig,
    ShedRequest,
)


def controller(**kw) -> AdmissionController:
    kw.setdefault("registry", MetricsRegistry())
    kw.setdefault("rng", random.Random(7))
    return AdmissionController(
        kw.pop("max_inflight", 2), kw.pop("max_queue", 2), **kw
    )


def test_admits_up_to_max_inflight_without_waiting():
    async def run():
        ctrl = controller(max_inflight=3)
        waits = [await ctrl.admit() for _ in range(3)]
        assert ctrl.inflight == 3
        assert all(w < 0.1 for w in waits)
        for _ in range(3):
            ctrl.exit()
        assert ctrl.inflight == 0
        assert ctrl.admitted == 3

    asyncio.run(run())


def test_sheds_at_queue_watermark_with_retry_hint():
    async def run():
        ctrl = controller(max_inflight=1, max_queue=1,
                          retry_after_s=0.25, retry_jitter_s=0.5)
        await ctrl.admit()  # takes the only slot
        waiter = asyncio.ensure_future(ctrl.admit())  # fills the queue
        await asyncio.sleep(0)
        assert ctrl.queued == 1
        with pytest.raises(ShedRequest) as info:
            await ctrl.admit()
        assert 0.25 <= info.value.retry_after_s < 0.75
        assert ctrl.shed == 1
        ctrl.exit()
        await waiter
        ctrl.exit()

    asyncio.run(run())


def test_queue_wait_times_out_with_admission_timeout():
    async def run():
        ctrl = controller(max_inflight=1)
        await ctrl.admit()
        with pytest.raises(AdmissionTimeout):
            await ctrl.admit(timeout_s=0.02)
        assert ctrl.timed_out == 1
        assert ctrl.queued == 0  # the dead waiter left the queue
        ctrl.exit()
        # The slot freed by exit() is admittable again.
        assert await ctrl.admit(timeout_s=0.5) < 0.1
        ctrl.exit()

    asyncio.run(run())


def test_queued_request_proceeds_when_slot_frees():
    async def run():
        ctrl = controller(max_inflight=1)
        await ctrl.admit()

        async def queued():
            waited = await ctrl.admit(timeout_s=1.0)
            ctrl.exit()
            return waited

        task = asyncio.ensure_future(queued())
        await asyncio.sleep(0.03)
        ctrl.exit()
        waited = await task
        assert waited >= 0.02

    asyncio.run(run())


def test_retry_after_is_jittered_within_bounds():
    ctrl = controller(retry_after_s=0.5, retry_jitter_s=0.5)
    draws = {ctrl.retry_after() for _ in range(64)}
    assert all(0.5 <= d < 1.0 for d in draws)
    assert len(draws) > 8  # actually jittered, not constant


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def test_breaker_trips_opens_probes_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=2, cooldown_s=5.0, clock=clock,
        registry=MetricsRegistry(),
    )
    assert breaker.allow_full_path()
    breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 1
    assert not breaker.allow_full_path()  # cooling down
    clock.now += 5.1
    assert breaker.allow_full_path()  # the half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow_full_path()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow_full_path()


def test_breaker_failed_probe_reopens_immediately():
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=1, cooldown_s=2.0, clock=clock,
        registry=MetricsRegistry(),
    )
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now += 2.5
    assert breaker.allow_full_path()
    breaker.record_failure()  # the probe failed
    assert breaker.state == "open"
    assert breaker.trips == 2
    assert not breaker.allow_full_path()  # a fresh cooldown started
    clock.now += 2.5
    assert breaker.allow_full_path()


def test_successful_request_resets_consecutive_failure_count():
    breaker = CircuitBreaker(threshold=3, registry=MetricsRegistry())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"  # never 3 consecutive


@pytest.mark.parametrize(
    "kw",
    [
        {"max_inflight": 0},
        {"max_inflight": "8"},
        {"max_queue": -1},
        {"deadline_ms": 0},
        {"deadline_ms": "fast"},
        {"retry_after_s": -0.1},
        {"breaker_threshold": 0},
        {"breaker_cooldown_s": 0},
        {"drain_timeout_s": -1},
        {"checkpoint_every": -2},
        {"max_rows": 0},
        {"executor_workers": 0},
    ],
)
def test_service_config_rejects_bad_values(kw):
    with pytest.raises(ConfigError) as info:
        ServiceConfig(**kw)
    assert list(kw)[0] in str(info.value)


def test_service_config_limits_carry_the_remaining_budget():
    config = ServiceConfig(max_rows=50)
    limits = config.limits(123.0)
    assert limits.deadline_ms == 123.0
    assert limits.max_rows == 50
    assert limits.on_limit == "partial"
    assert config.limits(-5.0, partial=False).on_limit == "error"
    assert config.limits(-5.0).deadline_ms > 0  # clamped, never None
