"""End-to-end over real sockets: routing, overload, swap, drain.

In-process tests drive :class:`HttpServer` through the loopback with the
stdlib client in :mod:`repro.serve.loadgen`; the final test boots the
actual ``repro serve`` CLI in a subprocess and SIGTERMs it mid-traffic.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.api import SearchEngine
from repro.obs.metrics import MetricsRegistry
from repro.serve import HttpServer, QueryService, ServiceConfig
from repro.serve.loadgen import _Client, run_loadgen

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
    "san francisco fault line stories quick fox",
]


def make_store(root) -> None:
    with SearchEngine.open(root) as engine:
        for i, text in enumerate(TEXTS):
            engine.add(text, title=f"doc{i}")
        engine.checkpoint()


async def start_server(root, config=None) -> HttpServer:
    service = QueryService(
        root,
        config or ServiceConfig(max_inflight=4, max_queue=8,
                                deadline_ms=5000.0),
        registry=MetricsRegistry(),
    )
    server = HttpServer(service, registry=service.registry)
    await server.start()
    return server


def test_routes_health_metrics_and_errors(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            status, body, _ = await client.request("/healthz")
            assert (status, body) == (200, {"alive": True})
            status, body, _ = await client.request("/readyz")
            assert status == 200 and body["ready"] is True
            status, body, _ = await client.request(
                "/search?q=quick%20fox&top_k=3"
            )
            assert status == 200
            assert len(body["results"]) == 3
            status, body, _ = await client.request("/explain?q=quick+fox")
            assert status == 200 and body["plan"]
            status, body, _ = await client.request("/status")
            assert status == 200 and body["writer_alive"] is True
            status, body, headers = await client.request("/metrics")
            assert status == 200
            assert "graft_http_requests_total" in body.get("raw", "")
            assert headers["content-type"].startswith("text/plain")
            status, body, _ = await client.request("/metrics?format=json")
            assert status == 200 and "families" in json.dumps(body) or body
            # Error surface: missing q, bad param, unknown route/method.
            status, body, _ = await client.request("/search")
            assert status == 400
            status, body, _ = await client.request("/search?q=x&top_k=soon")
            assert status == 400
            status, body, _ = await client.request("/nowhere")
            assert status == 404
            status, body, _ = await client.request("/search", method="POST")
            assert status == 405
            status, body, _ = await client.request(
                "/add", method="POST", body=b"not json"
            )
            assert status == 400
            status, body, _ = await client.request(
                "/add", method="POST",
                body=json.dumps({"text": "added over http",
                                 "title": "new"}).encode(),
            )
            assert status == 202 and body["doc_id"] == len(TEXTS)
            status, body, _ = await client.request(
                "/admin/checkpoint", method="POST"
            )
            assert status == 200 and body["epoch"] == 2
            status, body, _ = await client.request("/search?q=added+http")
            assert status == 200
            assert [r["title"] for r in body["results"]] == ["new"]
        finally:
            await client.close()
            await server.stop()

    asyncio.run(main())


def test_overload_sheds_with_retry_after_and_accepted_meet_deadline(
    tmp_path,
):
    """Satellite + tentpole acceptance: under 4x oversubscription the
    server sheds with 503 + Retry-After, answers every request, and the
    p99 of *accepted* requests stays under the configured deadline."""
    root = tmp_path / "store"
    make_store(root)
    deadline_ms = 2000.0

    async def main():
        config = ServiceConfig(
            max_inflight=1, max_queue=1, deadline_ms=deadline_ms,
            executor_workers=1, retry_after_s=0.2, retry_jitter_s=0.3,
        )
        server = await start_server(root, config)
        service = server.service

        # Slow the engine down so concurrency actually piles up.
        handle = service.readers.current
        original = handle.engine.search

        def slow_search(*a, **kw):
            time.sleep(0.05)
            return original(*a, **kw)

        handle.engine.search = slow_search
        report = await run_loadgen(
            server.host, server.port, requests=24, concurrency=12,
        )
        assert report.requests == 24
        assert report.errors == 0, report.summary()
        assert report.shed > 0  # the watermark did its job
        assert report.ok + report.shed + report.timeouts == 24
        assert report.p99_ms <= deadline_ms
        # Shed responses carried a parseable jittered Retry-After.
        client = _Client(server.host, server.port)
        service.admission.queued = config.max_queue  # force a shed
        try:
            status, _, headers = await client.request("/search?q=quick")
            assert status == 503
            assert 0.2 <= float(headers["retry-after"]) < 0.5
        finally:
            service.admission.queued = 0
            await client.close()
            await server.stop()

    asyncio.run(main())


def test_loadgen_mid_run_hot_swap_zero_errors(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        server = await start_server(root)
        # Ingest so the mid-run checkpoint actually changes generation.
        client = _Client(server.host, server.port)
        await client.request(
            "/add", method="POST",
            body=json.dumps({"text": "mid run quick fox doc"}).encode(),
        )
        await client.close()
        before = server.service.status()["generation"]
        report = await run_loadgen(
            server.host, server.port, requests=60, concurrency=6,
            swap_at=10,
        )
        await server.stop()
        assert report.errors == 0 and report.timeouts == 0, report.summary()
        assert report.ok + report.shed == 60
        # Every response named exactly one complete generation; once the
        # swap landed, later responses moved to the new one.
        after = {g for g in report.generations}
        assert before in after or len(after) >= 1
        assert server.service.readers.swaps >= 2
        for generation in after:
            assert generation.startswith("gen-")

    asyncio.run(main())


def test_graceful_drain_waits_for_inflight_requests(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def main():
        server = await start_server(root)
        service = server.service
        handle = service.readers.current
        original = handle.engine.search

        def slow_search(*a, **kw):
            time.sleep(0.2)
            return original(*a, **kw)

        handle.engine.search = slow_search
        client = _Client(server.host, server.port)
        await client.connect()
        inflight = asyncio.ensure_future(
            client.request("/search?q=quick+fox")
        )
        await asyncio.sleep(0.05)  # request is executing
        stop = asyncio.ensure_future(server.stop())
        status, body, _ = await inflight
        assert status == 200 and body["results"]
        await stop
        await client.close()
        # New connections are refused after the drain.
        with pytest.raises(OSError):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.close()

    asyncio.run(main())


def test_cli_serve_subprocess_sigterm_drains_cleanly(tmp_path):
    root = tmp_path / "store"
    make_store(root)
    env = dict(os.environ)
    repo_src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(root), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        assert "on http://" in line, line
        port = int(line.rsplit(":", 1)[1])

        async def drive():
            report = await run_loadgen(
                "127.0.0.1", port, requests=30, concurrency=3
            )
            return report

        report = asyncio.run(drive())
        assert report.ok == 30, report.summary()
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=15)
        assert proc.returncode == 0
        assert "drained; bye" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
