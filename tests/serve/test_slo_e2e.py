"""Layer 7 end to end: span export, SLO burn rates, the ops console.

The acceptance tests for the unified observability PR, over real
sockets: one request yields one schema-valid span tree at
``/debug/trace/<id>`` whose root covers the request wall time;
``/debug/slo`` flips to breaching under an injected latency fault and
recovers once it clears (arming and disarming early shedding on the
way); ``/metrics`` advertises the Prometheus exposition content type;
``repro top --once --json`` scrapes it all through the public surface.
"""

from __future__ import annotations

import asyncio
import io
import json
import time

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate
from repro.obs.slo import BurnWindow, SloEngine, parse_slo_spec
from repro.obs.spans import trace_id_for, verify_trace
from repro.serve import ServiceConfig
from repro.serve.console import run_top
from repro.serve.loadgen import _Client
from tests.obs.test_spans import SCHEMA
from tests.serve.test_telemetry_e2e import (
    make_store,
    slow_execute_wrapper,
    start_server,
)


def spans_config(**kw) -> ServiceConfig:
    return ServiceConfig(max_inflight=4, max_queue=16, deadline_ms=5000.0,
                         spans=True, **kw)


#: Tight burn windows so a breach/recovery cycle fits in a test: 2s
#: long window, 0.4s short confirmation, page above 2x burn.
TIGHT = (BurnWindow("fast", long_s=2.0, short_s=0.4, max_burn_rate=2.0),)


def tighten_slo(service) -> None:
    """Swap the service's SLO engine for one with sub-second windows."""
    service.slo = SloEngine(
        list(service.slo.objectives),
        windows=TIGHT,
        eval_interval_s=0.0,
        registry=MetricsRegistry(),
    )


# -- the span-tree acceptance test ------------------------------------------


def test_request_yields_one_consistent_span_tree(tmp_path):
    root = tmp_path / "store"
    make_store(root)
    rid = "e2e-trace-0001"

    async def run():
        server = await start_server(root, spans_config())
        slow_execute_wrapper(
            server.service.readers.current.engine, sleep_s=0.12
        )
        client = _Client(server.host, server.port)
        try:
            started = time.perf_counter()
            status, body, _ = await client.request(
                "/search?q=quick+fox&top_k=3",
                headers={"X-Request-Id": rid},
            )
            client_ms = (time.perf_counter() - started) * 1000.0
            assert status == 200
            assert body["request_id"] == rid
            status, payload, _ = await client.request(f"/debug/trace/{rid}")
            assert status == 200
            return payload, client_ms
        finally:
            await client.close()
            await server.stop()

    payload, client_ms = asyncio.run(run())
    # The contract: schema-valid, ids consistent, one root.
    validate(payload, SCHEMA)
    spans = verify_trace(payload)
    assert all(s["traceId"] == trace_id_for(rid) for s in spans)
    root_span = [s for s in spans if not s["parentSpanId"]][0]
    assert root_span["name"] == "/search"
    root_ms = (int(root_span["endTimeUnixNano"])
               - int(root_span["startTimeUnixNano"])) / 1e6
    # The root span covers the request: within 10% of the wall time the
    # client measured (the slow execute dominates both).
    assert root_ms >= 120.0
    assert root_ms >= 0.9 * client_ms, (root_ms, client_ms)
    assert root_ms <= client_ms * 1.05, (root_ms, client_ms)
    # The full phase timeline hangs off the root.
    names = {s["name"] for s in spans}
    for phase in ("queue_wait", "parse", "optimize", "execute", "serialize"):
        assert phase in names, names


def test_trace_endpoint_errors(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root, spans_config())
        client = _Client(server.host, server.port)
        try:
            status, body, _ = await client.request("/debug/trace/absent-id")
            assert status == 404
            # The raw path is not percent-decoded, so a hostile id needs
            # a byte the sanitizer rejects outright — a quote qualifies.
            status, body, _ = await client.request('/debug/trace/bad"id')
            assert status == 400
            status, _, _ = await client.request(
                "/debug/trace/x", method="POST"
            )
            assert status == 405
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_trace_endpoint_503_when_export_disabled(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            status, body, _ = await client.request("/debug/trace/anything")
            assert status == 503
            assert "--spans" in body["error"]
            status, body, _ = await client.request("/debug/slo")
            assert status == 503
            assert "--slo" in body["error"]
        finally:
            await client.close()
            await server.stop()

    asyncio.run(run())


def test_span_ring_state_visible_in_status(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root, spans_config(spans_capacity=8))
        client = _Client(server.host, server.port)
        try:
            for _ in range(3):
                await client.request("/search?q=quick")
            status, body, _ = await client.request("/status")
            assert status == 200
            return body
        finally:
            await client.close()
            await server.stop()

    body = asyncio.run(run())
    assert body["spans"] == {"ring": 3, "capacity": 8, "written": None}
    assert body["slo"] is None


# -- the SLO breach/recovery acceptance test --------------------------------


def test_slo_breaches_under_fault_and_recovers(tmp_path):
    root = tmp_path / "store"
    make_store(root)
    config = ServiceConfig(
        max_inflight=4, max_queue=16, deadline_ms=5000.0,
        slos=("latency:p99:10ms:0.99",), slo_shed=True,
    )

    async def run():
        server = await start_server(root, config)
        tighten_slo(server.service)
        engine = server.service.readers.current.engine
        original_search = engine.search
        slow_execute_wrapper(engine, sleep_s=0.05)  # 50ms >> 10ms SLO
        client = _Client(server.host, server.port)
        try:
            for _ in range(8):
                status, _, _ = await client.request("/search?q=quick")
                assert status == 200
            status, breach_report, _ = await client.request("/debug/slo")
            assert status == 200

            # The fault clears; the short confirmation window drains.
            engine.search = original_search
            await asyncio.sleep(0.6)
            for _ in range(8):
                await client.request("/search?q=quick")
            status, recovery_report, _ = await client.request("/debug/slo")
            assert status == 200
            status, svc_status, _ = await client.request("/status")
            return breach_report, recovery_report, svc_status
        finally:
            await client.close()
            await server.stop()

    breach, recovery, svc_status = asyncio.run(run())

    assert breach["breaching"] is True
    assert breach["fast_burn_breaching"] is True
    objective = breach["objectives"][0]
    assert objective["name"] == "latency_p99_10ms"
    assert objective["state"] == "breaching"
    assert objective["windows"]["fast"]["breaching"] is True
    assert objective["measured_ms"] >= 50.0
    assert objective["budget"]["remaining_fraction"] == 0.0
    # Fast burn armed the admission controller's early shedding.
    assert breach["shed_pressure"] is True

    assert recovery["breaching"] is False
    assert recovery["objectives"][0]["state"] == "ok"
    assert recovery["shed_pressure"] is False
    assert svc_status["slo"] == {
        "objectives": 1, "breaching": [], "shed_pressure": False,
    }


def test_pressure_mode_halves_the_admission_watermark():
    from repro.serve import AdmissionController

    controller = AdmissionController(
        max_inflight=4, max_queue=10, registry=MetricsRegistry()
    )
    assert controller.effective_max_queue() == 10
    controller.set_pressure(True)
    assert controller.effective_max_queue() == 5
    controller.set_pressure(False)
    assert controller.effective_max_queue() == 10


def test_pressure_shed_is_counted_and_labeled():
    from repro.serve import AdmissionController, ShedRequest

    async def run():
        controller = AdmissionController(
            max_inflight=1, max_queue=2, registry=MetricsRegistry()
        )
        controller.set_pressure(True)  # watermark drops to 1
        await controller.admit()       # take the slot
        waiter = asyncio.ensure_future(controller.admit())  # queued: 1
        await asyncio.sleep(0)
        try:
            await controller.admit()   # at the reduced watermark: shed
        except ShedRequest as exc:
            message = str(exc)
        else:
            raise AssertionError("expected a shed at reduced watermark")
        finally:
            controller.exit()
            await waiter
            controller.exit()
        return message, controller.pressure_sheds

    message, pressure_sheds = asyncio.run(run())
    assert "[slo pressure]" in message
    assert pressure_sheds == 1


# -- /metrics content type (satellite) --------------------------------------


def test_metrics_exposition_content_type(tmp_path):
    root = tmp_path / "store"
    make_store(root)

    async def run():
        server = await start_server(root)
        client = _Client(server.host, server.port)
        try:
            await client.request("/search?q=quick")  # populate families
            status, body, headers = await client.request("/metrics")
            assert status == 200
            return body, headers
        finally:
            await client.close()
            await server.stop()

    body, headers = asyncio.run(run())
    assert headers["content-type"] == \
        "text/plain; version=0.0.4; charset=utf-8"
    assert "graft_" in body["raw"]


# -- repro top over a live service ------------------------------------------


def test_top_once_json_scrapes_the_live_service(tmp_path):
    root = tmp_path / "store"
    make_store(root)
    config = spans_config(slos=("latency:p99:50ms:0.99",))

    async def run():
        server = await start_server(root, config)
        client = _Client(server.host, server.port)
        try:
            await client.request("/search?q=quick")
            out = io.StringIO()
            # run_top is synchronous urllib — hop off the event loop so
            # the server can answer its polls.
            code = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: run_top(f"{server.host}:{server.port}",
                                once=True, as_json=True, out=out),
            )
            return code, out.getvalue()
        finally:
            await client.close()
            await server.stop()

    code, output = asyncio.run(run())
    assert code == 0
    snapshot = json.loads(output)
    assert snapshot["status"]["ready"] is True
    assert snapshot["status"]["spans"]["ring"] == 1
    assert snapshot["slo"]["objectives"][0]["name"] == "latency_p99_50ms"
    assert "graft_http_request_seconds" in snapshot["metrics"]


def test_top_exit_2_against_nothing():
    assert run_top("127.0.0.1:1", once=True, out=io.StringIO()) == 2


# -- repro slow on v1 records (satellite) -----------------------------------


def test_slow_skips_unattributable_v1_records(tmp_path, capsys):
    path = tmp_path / "mixed.jsonl"
    v2 = {
        "request_id": "r1", "route": "/search", "query": "q", "scheme": "s",
        "status": 200, "ts": 1.0, "wall_ms": 12.0,
        "phase_ms": {"parse": 2.0, "execute": 10.0},
        "unattributed_ms": 0.0, "shards": [], "notes": {},
    }
    v1_no_phases = {"schema": 1, "query": "old", "wall_ms": 5.0,
                    "status": "ok"}
    v1_no_rid = {"phase_ms": {"parse": 1.0}, "wall_ms": 3.0}
    lines = [v2, v1_no_phases, v1_no_rid, dict(v2, request_id="r2")]
    path.write_text("\n".join(json.dumps(e) for e in lines) + "\n")

    assert main(["slow", str(path), "--json"]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert report["skipped"] == 2
    assert report["events"] == 2
    assert "skipped 2 record(s)" in captured.err

    # Text mode reports the skip count too.
    assert main(["slow", str(path)]) == 0
    captured = capsys.readouterr()
    assert "(2 unattributable record(s) skipped)" in captured.out


def test_slow_all_v1_records_degrades_to_empty_report(tmp_path, capsys):
    path = tmp_path / "v1.jsonl"
    records = [
        {"schema": 1, "query": "a", "wall_ms": 5.0, "status": "ok"},
        {"schema": 1, "query": "b", "wall_ms": 7.0, "status": "ok"},
    ]
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    assert main(["slow", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["skipped"] == 2
    assert report["events"] == 0
