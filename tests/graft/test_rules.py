"""Structural tests for the individual rewrite rules."""

import pytest

from repro.graft.canonical import make_query_info
from repro.graft.plan import AlternateElim, GroupScore, ScoreInit
from repro.graft.rules import (
    apply_alternate_elimination,
    apply_eager_aggregation,
    apply_eager_counting,
    apply_forward_scan_joins,
    apply_join_reordering,
    apply_pre_counting,
    apply_selection_pushing,
    apply_sort_elimination,
    countable_vars,
)
from repro.ma.nodes import (
    Atom,
    GroupCount,
    Join,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
)
from repro.ma.translate import matching_subplan
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def subplan(text):
    return matching_subplan(parse_query(text))


class TestSelectionPushing:
    def test_predicate_lands_on_straddling_join(self):
        plan = apply_selection_pushing(subplan("(a b)WINDOW[5]"))
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert len(joins) == 1
        assert [p.name for p in joins[0].predicates] == ["WINDOW"]
        assert not any(isinstance(n, Select) for n in plan.walk())

    def test_predicate_descends_into_subtree(self):
        plan = apply_selection_pushing(subplan('c "a b"'))
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        # The DISTANCE lands on the inner a-b join, not the outer one.
        outer = [j for j in joins if "c" in {a.keyword for a in j.walk() if isinstance(a, Atom)}]
        inner = [j for j in joins if j.predicates]
        assert len(inner) == 1
        keywords = {a.keyword for a in inner[0].walk() if isinstance(a, Atom)}
        assert keywords == {"a", "b"}
        assert outer and not outer[0].predicates

    def test_predicate_descends_into_union_branch(self):
        plan = apply_selection_pushing(subplan('x (y | "a b")'))
        unions = [n for n in plan.walk() if isinstance(n, Union)]
        assert len(unions) == 1
        branch_joins = [n for n in unions[0].walk() if isinstance(n, Join)]
        assert any(j.predicates for j in branch_joins)

    def test_branch_straddling_predicate_dropped_as_vacuous(self):
        # PROXIMITY over variables from different union branches can never
        # constrain a row (one side is always EMPTY).
        from repro.mcalc.ast import And, Has, Or, Pred, Query
        from repro.mcalc.safety import pad_disjunctions

        raw = And((
            Or((Has("p0", "a"), Has("p1", "b"))),
            Pred("PROXIMITY", ("p0", "p1"), (3,)),
        ))
        q = Query(
            formula=pad_disjunctions(raw),
            free_vars=("p0", "p1"),
            source_formula=raw,
        )
        plan = apply_selection_pushing(matching_subplan(q))
        assert not any(isinstance(n, Select) for n in plan.walk())
        assert not any(
            isinstance(n, Join) and n.predicates for n in plan.walk()
        )

    def test_idempotent(self):
        once = apply_selection_pushing(subplan("(a b)WINDOW[5] c"))
        twice = apply_selection_pushing(once)
        from repro.graft.explain import explain

        assert explain(once) == explain(twice)


class TestSortElimination:
    def test_removes_sort(self):
        plan = apply_sort_elimination(subplan("a b"))
        assert not any(isinstance(n, Sort) for n in plan.walk())


class TestCounting:
    def test_countable_vars_excludes_predicate_vars(self):
        q = parse_query("(a b)WINDOW[5] c")
        info = make_query_info(q, get_scheme("anysum"))
        assert countable_vars(info, get_scheme("anysum")) == {"p2"}

    def test_countable_vars_respects_positionality(self):
        q = parse_query("a b")
        info = make_query_info(q, get_scheme("bestsum-mindist"))
        assert countable_vars(info, get_scheme("bestsum-mindist")) == set()

    def test_lucene_counts_free_keywords_only(self):
        """Table 2 footnote: Lucene is positional only for its
        phrase/proximity columns, so free keywords still pre-count."""
        q = parse_query("(a b)PROXIMITY[3] c")
        scheme = get_scheme("lucene")
        info = make_query_info(q, scheme)
        assert countable_vars(info, scheme) == {"p2"}

    def test_eager_counting_builds_chain(self):
        q = parse_query("a b")
        scheme = get_scheme("anysum")
        info = make_query_info(q, scheme)
        plan = apply_eager_counting(subplan("a b"), info, scheme)
        counts = [n for n in plan.walk() if isinstance(n, GroupCount)]
        assert len(counts) == 2
        assert all(isinstance(c.child, PositionProject) for c in counts)

    def test_pre_counting_swaps_index(self):
        q = parse_query("a b")
        scheme = get_scheme("anysum")
        info = make_query_info(q, scheme)
        counted = apply_eager_counting(subplan("a b"), info, scheme)
        pre = apply_pre_counting(counted, info, scheme)
        leaves = [n for n in pre.walk() if isinstance(n, PreCountAtom)]
        assert {leaf.keyword for leaf in leaves} == {"a", "b"}
        assert not any(isinstance(n, GroupCount) for n in pre.walk())


class TestAlternateElimination:
    def test_replaces_group_score_below_score_init(self):
        from repro.graft.canonical import canonical_plan

        q = parse_query("a b")
        plan, _ = canonical_plan(q, get_scheme("anysum"))
        plan = apply_sort_elimination(plan)
        rewritten = apply_alternate_elimination(plan)
        deltas = [n for n in rewritten.walk() if isinstance(n, AlternateElim)]
        assert len(deltas) == 1
        inits = [n for n in rewritten.walk() if isinstance(n, ScoreInit)]
        assert isinstance(inits[0].child, AlternateElim)
        assert not any(isinstance(n, GroupScore) for n in rewritten.walk())

    def test_replaces_eager_count_groups(self):
        q = parse_query("a b")
        scheme = get_scheme("anysum")
        info = make_query_info(q, scheme)
        counted = apply_eager_counting(subplan("a b"), info, scheme)
        rewritten = apply_alternate_elimination(counted)
        assert not any(isinstance(n, GroupCount) for n in rewritten.walk())
        assert sum(isinstance(n, AlternateElim) for n in rewritten.walk()) == 2


class TestEagerAggregation:
    def test_group_bys_pushed_to_leaves(self):
        q = parse_query("a b")
        info = make_query_info(q, get_scheme("sumbest"))
        matching = apply_selection_pushing(subplan("a b"))
        plan = apply_eager_aggregation(matching, info)
        groups = [n for n in plan.walk() if isinstance(n, GroupScore)]
        # One partial aggregation per (raw, multi-row) leaf, plus the root
        # merge group-by.
        assert len(groups) == 3
        leaf_groups = [g for g in groups if isinstance(g.child, ScoreInit)]
        assert len(leaf_groups) == 2
        for g in leaf_groups:
            assert isinstance(g.child.child, Atom)
            assert g.counts_incorporated

    def test_predicate_join_aggregated_above(self):
        q = parse_query('(a b)WINDOW[5] c')
        info = make_query_info(q, get_scheme("sumbest"))
        matching = apply_selection_pushing(subplan('(a b)WINDOW[5] c'))
        plan = apply_eager_aggregation(matching, info)
        # The a-b join carries WINDOW; its leaves must stay raw and the
        # aggregation must sit above that join.
        pred_joins = [
            n for n in plan.walk()
            if isinstance(n, Join) and n.predicates
        ]
        assert len(pred_joins) == 1
        for leaf in pred_joins[0].walk():
            assert not isinstance(leaf, (ScoreInit, GroupScore))

    def test_row_first_rejected(self):
        from repro.errors import OptimizationError

        q = parse_query("a b")
        info = make_query_info(q, get_scheme("event-model"))
        with pytest.raises(OptimizationError):
            apply_eager_aggregation(subplan("a b"), info)

    def test_no_sort_in_eager_plan(self):
        q = parse_query("a b")
        info = make_query_info(q, get_scheme("meansum"))
        plan = apply_eager_aggregation(subplan("a b"), info)
        assert not any(isinstance(n, Sort) for n in plan.walk())


class TestForwardScan:
    def test_marks_predicate_joins(self):
        plan = apply_selection_pushing(subplan('"a b"'))
        marked = apply_forward_scan_joins(plan)
        joins = [n for n in marked.walk() if isinstance(n, Join)]
        assert [j.algorithm for j in joins] == ["forward"]

    def test_leaves_predicate_free_joins_alone(self):
        plan = apply_forward_scan_joins(subplan("a b"))
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert [j.algorithm for j in joins] == ["merge"]


class TestJoinReordering:
    def test_cheapest_leaf_drives(self, tiny_index):
        # 'lazy' (2 positions) is rarer than 'dog' (8) and 'fox' (6): it
        # must end up as the left-deep chain's driving (innermost-left)
        # leaf.
        plan = apply_selection_pushing(subplan("dog fox lazy"))
        reordered = apply_join_reordering(plan, tiny_index)
        top = reordered
        while isinstance(top, Sort):
            top = top.child
        assert isinstance(top, Join)
        driver = top
        while isinstance(driver, Join):
            driver = driver.left
        assert isinstance(driver, Atom) and driver.keyword == "lazy"

    def test_predicate_groups_kept_intact(self, tiny_index):
        plan = apply_selection_pushing(subplan('dog "quick fox"'))
        reordered = apply_join_reordering(plan, tiny_index)
        pred_joins = [
            n for n in reordered.walk() if isinstance(n, Join) and n.predicates
        ]
        assert len(pred_joins) == 1
        keywords = {
            a.keyword for a in pred_joins[0].walk() if isinstance(a, Atom)
        }
        assert keywords == {"quick", "fox"}
