"""The Section 2 motivation, reproduced end to end.

Plan 1 (selection after join J2) and Plan 2 (selection pushed below J2)
compute the same matches for Q1 over d_w, but under the score-encapsulated
framework of [7] they compute *different* document scores — one quarter of
the 'emulator' tuple's score value survives in Plan 1 versus all of it in
Plan 2.  GRAFT's score-isolated architecture charges the same score for
both plan shapes.
"""

import pytest

from repro.index.builder import build_index
from repro.legacy.encapsulated import EncapsulatedEngine, join_normalized_sj
from repro.mcalc.ast import Pred


@pytest.fixture(scope="module")
def engine(request):
    from repro.corpus.wine import wine_collection

    col = wine_collection()
    idx = build_index(col)
    from repro.sa.context import IndexScoringContext

    # Unit initial scores make the 1/4-vs-1 effect exact.
    return EncapsulatedEngine(
        idx,
        IndexScoringContext(idx),
        sj=join_normalized_sj,
        initial=lambda ctx, doc, var, kw: 1.0,
    )


DIST = Pred("DISTANCE", ("p1", "p2"), (1,))


def plan_1(e):
    """J1(emulator, J2(free, software)) then selection (canonical order)."""
    j2 = e.join(e.atom("p1", "free"), e.atom("p2", "software"))
    j1 = e.join(e.atom("p0", "emulator"), j2)
    return e.select(j1, DIST)


def plan_2(e):
    """Selection pushed through J2 (textbook rewrite)."""
    j2 = e.select(e.join(e.atom("p1", "free"), e.atom("p2", "software")), DIST)
    return e.join(e.atom("p0", "emulator"), j2)


def test_both_plans_compute_the_same_matches(engine):
    m1 = {(d, tuple(sorted(b.items()))) for d, b, _ in plan_1(engine)}
    m2 = {(d, tuple(sorted(b.items()))) for d, b, _ in plan_2(engine)}
    assert m1 == m2
    assert len(m1) == 1  # the single Q1 match of Section 2


def test_encapsulated_scores_differ_between_plans(engine):
    """The paper's quantitative claim: pushing the selection changes the
    surviving score mass (1/4 of the emulator contribution vs all of it)."""
    s1 = engine.document_scores(plan_1(engine))[0]
    s2 = engine.document_scores(plan_2(engine))[0]
    assert s1 != pytest.approx(s2)
    # Plan 1: emulator's unit score is split across 4 joined tuples, three
    # of which the selection then discards.
    assert s1 == pytest.approx(1 / 4 + (1 / 4 + 1 / 1) / 1)
    # Plan 2: the selection runs first, so emulator's score is split
    # across the single surviving tuple.
    assert s2 == pytest.approx(1 / 1 + (1 / 4 + 1 / 1) / 1)


def test_graft_is_score_consistent_for_the_same_query(wine_env):
    """GRAFT with the Join-Normalized scheme: canonical plan and
    selection-pushed plan score identically (Table 3 allows the rewrite)."""
    from repro.exec.engine import execute, make_runtime
    from repro.graft.optimizer import Optimizer, OptimizerOptions
    from repro.mcalc.parser import parse_query
    from repro.sa.registry import get_scheme

    _, idx, ctx = wine_env
    q = parse_query('emulator "free software"')
    scheme = get_scheme("join-normalized")

    canonical = Optimizer(scheme, idx).canonical(q)
    want = execute(canonical.plan, make_runtime(idx, scheme, canonical.info, ctx))

    optimized = Optimizer(scheme, idx).optimize(q)
    assert "selection-pushing" in optimized.applied
    got = execute(optimized.plan, make_runtime(idx, scheme, optimized.info, ctx))

    assert len(got) == len(want) == 1
    assert got[0][0] == want[0][0]
    assert got[0][1] == pytest.approx(want[0][1])
