"""Directionality semantics (Section 4.2.2).

Diagonal schemes must score identically row-first and column-first —
through the full engine, not just the reference scorer — while forcing a
directional scheme across its declared direction must be refused.
"""

import pytest

from repro.exec.engine import execute, make_runtime
from repro.errors import PlanError
from repro.graft.canonical import canonical_plan
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme

from tests.conftest import TINY_QUERIES, assert_same_ranking

DIAGONAL = ("anysum", "meansum", "anyprod", "klsum")


@pytest.mark.parametrize("scheme_name", DIAGONAL)
@pytest.mark.parametrize("text", TINY_QUERIES)
def test_diagonal_schemes_direction_invariant(
    scheme_name, text, tiny_index, tiny_ctx
):
    scheme = get_scheme(scheme_name)
    q = parse_query(text)
    results = {}
    for direction in ("row", "col"):
        plan, info = canonical_plan(q, scheme, direction=direction)
        results[direction] = execute(
            plan, make_runtime(tiny_index, scheme, info, tiny_ctx)
        )
    assert_same_ranking(results["row"], results["col"])


@pytest.mark.parametrize("scheme_name,wrong", [
    ("sumbest", "row"),
    ("lucene", "row"),
    ("event-model", "col"),
    ("bestsum-mindist", "col"),
])
def test_directional_schemes_refuse_wrong_direction(scheme_name, wrong):
    with pytest.raises(PlanError):
        canonical_plan(parse_query("a b"), get_scheme(scheme_name), direction=wrong)


def test_directional_scheme_would_score_differently(tiny_index, tiny_ctx):
    """The refusal above is not pedantry: forcing SumBest row-first (via
    the reference scorer) genuinely changes scores."""
    from repro.mcalc.oracle import document_matches
    from repro.sa.reference import score_match_table

    scheme = get_scheme("sumbest")
    q = parse_query("quick (fox | dog)")
    differ = 0
    from tests.conftest import make_tiny_collection

    for doc in make_tiny_collection():
        rows = document_matches(q, doc)
        if not rows:
            continue
        row_first = score_match_table(
            scheme, tiny_ctx, q, doc.doc_id, rows, direction="row"
        )
        col_first = score_match_table(
            scheme, tiny_ctx, q, doc.doc_id, rows, direction="col"
        )
        if abs(row_first - col_first) > 1e-12:
            differ += 1
    assert differ > 0
