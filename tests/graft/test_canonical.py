"""Canonical score-isolated plan tests (Plans 5/6/7)."""

import pytest

from repro.errors import PlanError
from repro.graft.canonical import canonical_plan, make_query_info
from repro.graft.plan import CombinePhi, Finalize, GroupScore, ScoreInit
from repro.ma.nodes import Select, Sort
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def test_column_first_shape():
    """Plan 5: omega(Phi(gamma_alt(alpha(matching))))."""
    q = parse_query("a b")
    plan, info = canonical_plan(q, get_scheme("sumbest"))
    assert info.direction == "col"
    assert isinstance(plan, Finalize)
    assert isinstance(plan.child, CombinePhi)
    assert isinstance(plan.child.child, GroupScore)
    assert isinstance(plan.child.child.child, ScoreInit)
    assert isinstance(plan.child.child.child.child, Sort)


def test_row_first_shape():
    """Plan 6: omega(gamma_alt(Phi(alpha(matching))))."""
    q = parse_query("a b")
    plan, info = canonical_plan(q, get_scheme("event-model"))
    assert info.direction == "row"
    assert isinstance(plan, Finalize)
    assert isinstance(plan.child, GroupScore)
    assert isinstance(plan.child.child, CombinePhi)
    assert isinstance(plan.child.child.child, ScoreInit)


def test_diagonal_defaults_to_column_first():
    q = parse_query("a b")
    _, info = canonical_plan(q, get_scheme("meansum"))
    assert info.direction == "col"


def test_diagonal_accepts_forced_row_first():
    q = parse_query("a b")
    plan, info = canonical_plan(q, get_scheme("meansum"), direction="row")
    assert info.direction == "row"
    assert isinstance(plan.child, GroupScore)


def test_directional_scheme_rejects_wrong_direction():
    q = parse_query("a b")
    with pytest.raises(PlanError):
        canonical_plan(q, get_scheme("event-model"), direction="col")


def test_score_isolation():
    """The matching subplan contains no scoring operators (Definition 1's
    precondition: score-isolated input plans)."""
    q = parse_query('(a b)WINDOW[5] (c | "d e")')
    plan, _ = canonical_plan(q, get_scheme("meansum"))
    init = plan.child.child.child
    assert isinstance(init, ScoreInit)
    matching_nodes = list(init.child.walk())
    from repro.graft.plan import AlternateElim

    for node in matching_nodes:
        assert not isinstance(
            node, (ScoreInit, CombinePhi, GroupScore, Finalize, AlternateElim)
        )


def test_canonical_has_single_sort_and_selection():
    q = parse_query('(a b)WINDOW[5] c')
    plan, _ = canonical_plan(q, get_scheme("meansum"))
    sorts = [n for n in plan.walk() if isinstance(n, Sort)]
    selects = [n for n in plan.walk() if isinstance(n, Select)]
    assert len(sorts) == 1
    assert len(selects) == 1


def test_query_info_carries_predicates():
    q = parse_query('(a b)WINDOW[5] c')
    info = make_query_info(q, get_scheme("lucene"))
    assert [p.name for p in info.predicates] == ["WINDOW"]
    assert info.free_vars == ("p0", "p1", "p2")
