"""End-to-end integration: the full paper workload against the oracle.

Every paper query, on a (small) themed synthetic corpus, under a
representative scheme from each directionality family, optimized with the
default pipeline — compared against the brute-force reference semantics.
This is the widest single statement of score consistency in the suite.
"""

import pytest

from repro.bench.workload import PAPER_QUERIES, bench_fixture
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.sa.context import IndexScoringContext
from repro.sa.reference import rank_with_oracle
from repro.sa.registry import get_scheme

from tests.conftest import assert_same_ranking

#: One scheme per optimizer path: constant, column-first eager-agg,
#: diagonal eager-agg, row-first canonical, row-first positional.
SCHEMES = ("anysum", "sumbest", "meansum", "event-model", "bestsum-mindist")


@pytest.fixture(scope="module")
def fx():
    return bench_fixture(num_docs=200)


@pytest.mark.parametrize("scheme_name", SCHEMES)
@pytest.mark.parametrize("query_name", sorted(PAPER_QUERIES))
def test_paper_query_consistent_with_oracle(query_name, scheme_name, fx):
    scheme = get_scheme(scheme_name)
    query = fx.queries[query_name]
    ctx = IndexScoringContext(fx.index)
    res = Optimizer(scheme, fx.index).optimize(query)
    got = execute(res.plan, make_runtime(fx.index, scheme, res.info, ctx))
    want = rank_with_oracle(scheme, ctx, query, fx.collection)
    assert_same_ranking(got, want)


def test_workload_has_nontrivial_answers(fx):
    """At 200 documents at least half the paper queries should match
    something, or the integration above is vacuous."""
    scheme = get_scheme("anysum")
    ctx = IndexScoringContext(fx.index)
    nonempty = 0
    for query in fx.queries.values():
        res = Optimizer(scheme, fx.index).optimize(query)
        if execute(res.plan, make_runtime(fx.index, scheme, res.info, ctx)):
            nonempty += 1
    assert nonempty >= 4
