"""Optimizer pipeline tests: gating, plan shapes, option toggles."""

import pytest

from repro.graft.explain import explain
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.graft.plan import AlternateElim, GroupScore
from repro.ma.nodes import GroupCount, Join, PreCountAtom, Sort
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def optimize(text, scheme_name, index=None, **options):
    scheme = get_scheme(scheme_name)
    opts = OptimizerOptions(**options) if options else None
    return Optimizer(scheme, index, opts).optimize(parse_query(text))


class TestGating:
    def test_constant_scheme_gets_delta_and_precount(self):
        res = optimize("a b c", "anysum")
        assert "alternate-elimination" in res.applied
        assert "pre-counting" in res.applied
        assert any(isinstance(n, AlternateElim) for n in res.plan.walk())
        assert any(isinstance(n, PreCountAtom) for n in res.plan.walk())

    def test_eager_agg_scheme_gets_pushed_groups(self):
        res = optimize("a b c", "sumbest")
        assert "eager-aggregation" in res.applied
        assert "alternate-elimination" not in res.applied
        groups = [n for n in res.plan.walk() if isinstance(n, GroupScore)]
        assert all(g.counts_incorporated for g in groups)

    def test_row_first_scheme_keeps_canonical_arrangement(self):
        res = optimize("a b c", "event-model")
        assert "eager-aggregation" not in res.applied
        assert "alternate-elimination" not in res.applied
        # Counting still fires (non-positional free keywords).
        assert "eager-counting" in res.applied

    def test_positional_scheme_never_counts(self):
        res = optimize("a b c", "bestsum-mindist")
        assert "eager-counting" not in res.applied
        assert "pre-counting" not in res.applied
        assert not any(isinstance(n, (GroupCount, PreCountAtom))
                       for n in res.plan.walk())

    def test_sort_survives_for_non_commutative_alt(self):
        """A custom scheme with a non-commutative alternate combinator
        must keep the canonical sort."""
        from repro.sa.properties import SchemeProperties
        from repro.sa.schemes.sumbest import SumBest

        class FirstMatch(SumBest):
            name = "first-match"
            properties = SchemeProperties(
                directional="col",
                alt_commutes=False,
                alt_idempotent=False,
                alt_multiplies=False,
            )

            def alt(self, left, right):
                return left  # first in table order: order-sensitive

        res = Optimizer(FirstMatch()).optimize(parse_query("a b"))
        assert "sort-elimination" not in res.applied
        assert any(isinstance(n, Sort) for n in res.plan.walk())

    def test_forward_scan_off_by_default(self):
        res = optimize('"a b"', "anysum")
        assert "forward-scan-join" not in res.applied

    def test_forward_scan_opt_in_constant_only(self):
        res = optimize('"a b"', "anysum", forward_scan=True)
        assert "forward-scan-join" in res.applied
        joins = [n for n in res.plan.walk() if isinstance(n, Join)]
        assert any(j.algorithm == "forward" for j in joins)
        res2 = optimize('"a b"', "sumbest", forward_scan=True)
        assert "forward-scan-join" not in res2.applied


class TestOptions:
    def test_disabling_everything_is_canonical_shaped(self):
        res = optimize(
            "a b", "anysum",
            selection_pushing=False, join_reordering=False,
            eager_counting=False, pre_counting=False,
            eager_aggregation=False, alternate_elimination=False,
            sort_elimination=False,
        )
        assert res.applied == []
        canonical = Optimizer(get_scheme("anysum")).canonical(parse_query("a b"))
        assert explain(res.plan) == explain(canonical.plan)

    def test_pre_counting_requires_eager_counting(self):
        res = optimize("a b", "anysum", eager_counting=False)
        assert "pre-counting" not in res.applied

    def test_alt_elim_without_precount(self):
        res = optimize("a b", "anysum", pre_counting=False)
        assert "alternate-elimination" in res.applied
        assert "eager-counting" in res.applied
        assert not any(isinstance(n, PreCountAtom) for n in res.plan.walk())

    def test_join_reordering_needs_index(self, tiny_index):
        without = optimize("dog fox lazy", "anysum")
        assert "join-reordering" not in without.applied
        with_idx = optimize("dog fox lazy", "anysum", index=tiny_index)
        assert "join-reordering" in with_idx.applied


class TestProvenance:
    def test_applied_list_matches_plan(self, tiny_index):
        res = optimize("a (b | c)", "meansum", index=tiny_index)
        assert "eager-aggregation" in res.applied
        assert "selection-pushing" in res.applied

    def test_canonical_reports_no_rewrites(self):
        res = Optimizer(get_scheme("meansum")).canonical(parse_query("a b"))
        assert res.applied == []
