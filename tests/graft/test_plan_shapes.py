"""Golden plan shapes: the optimizer's output for the paper's queries.

These snapshots lock in the plan structure per scheme family (constant /
eager-aggregation / row-first) so optimizer regressions show up as a
readable plan diff, the way the paper's Plans 7 and 8 document their
shapes.
"""

import pytest

from repro.graft.explain import explain
from repro.graft.optimizer import Optimizer
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def plan_text(text, scheme_name, index=None):
    scheme = get_scheme(scheme_name)
    res = Optimizer(scheme, index).optimize(parse_query(text))
    return explain(res.plan)


def test_constant_scheme_shape_plan8_style():
    """The optimized Q3 plan under AnySum mirrors the paper's Plan 8:
    pre-counted free keyword, predicates in joins, no sort, delta."""
    assert plan_text(
        '(windows emulator)WINDOW[50] (foss | "free software")', "anysum"
    ) == """\
pi[omega]
  pi[Phi]
    pi[alpha: p0, p1, p2, p3, p4]
      delta[doc]
        zigzag-join
          zigzag-join[WINDOW(p0, p1, 50)]
            A(p0:'windows')
            A(p1:'emulator')
          outer-union
            CA(p2:'foss')
            zigzag-join[DISTANCE(p3, p4, 1)]
              A(p3:'free')
              A(p4:'software')"""


def test_eager_aggregation_shape():
    """Column-first schemes push group-bys beneath joins; pre-counted
    leaves are fused score scans; the phrase join aggregates above its
    predicate."""
    assert plan_text('"a b" c', "sumbest") == """\
pi[omega]
  pi[Phi]
    gamma[alt]
      pi[alpha: p2]
        zigzag-join
          gamma[alt]
            pi[alpha: p0, p1]
              zigzag-join[DISTANCE(p0, p1, 1)]
                A(p0:'a')
                A(p1:'b')
          CA(p2:'c')"""


def test_row_first_shape():
    """Row-first schemes keep the canonical Phi-then-group arrangement;
    counting still applies to the free keywords."""
    assert plan_text("a b", "event-model") == """\
pi[omega]
  gamma[alt]
    pi[Phi]
      pi[alpha: p0, p1]
        zigzag-join
          CA(p0:'a')
          CA(p1:'b')"""


def test_positional_scheme_keeps_positions():
    """BestSum+MinDist forbids counting: raw position scans survive."""
    text = plan_text("a b", "bestsum-mindist")
    assert "CA(" not in text
    assert "A(p0:'a')" in text and "A(p1:'b')" in text
    assert "gamma[alt]" in text


def test_canonical_shape_is_plan7_style():
    """The canonical plan: right-deep joins, one top selection, one sort,
    scoring isolated on top."""
    scheme = get_scheme("meansum")
    res = Optimizer(scheme).canonical(
        parse_query('(a b)WINDOW[5] (c | "d e")')
    )
    text = explain(res.plan)
    assert text == """\
pi[omega]
  pi[Phi]
    gamma[alt]
      pi[alpha: p0, p1, p2, p3, p4]
        tau[p0, p1, p2, p3, p4]
          sigma[WINDOW(p0, p1, 5) & DISTANCE(p3, p4, 1)]
            zigzag-join
              zigzag-join
                A(p0:'a')
                A(p1:'b')
              outer-union
                A(p2:'c')
                zigzag-join
                  A(p3:'d')
                  A(p4:'e')"""
