"""Table 1 (validity matrix) and Table 3 (allowed optimizations) goldens."""

import pytest

from repro.errors import OptimizationError
from repro.graft.validity import (
    OPTIMIZATIONS,
    allowed_optimizations,
    optimization_allowed,
    require_allowed,
    table1_rows,
)
from repro.sa.registry import get_scheme

from tests.conftest import SCHEME_NAMES


def test_table_1_row_set():
    names = [spec.name for spec in OPTIMIZATIONS]
    assert names == [
        "sort-elimination",
        "join-reordering",
        "selection-pushing",
        "zigzag-join",
        "forward-scan-join",
        "alternate-elimination",
        "eager-aggregation",
        "eager-counting",
        "pre-counting",
        "rank-join",
        "rank-union",
    ]


def test_classical_optimizations_unrestricted():
    """Table 1: "there are no restrictions on classical optimizations
    (join reordering, selection pushing, zig-zag joins, and eager
    counting)"."""
    for name in SCHEME_NAMES:
        props = get_scheme(name).properties
        for opt in ("join-reordering", "selection-pushing", "zigzag-join",
                    "eager-counting"):
            assert optimization_allowed(opt, props), (name, opt)


def test_constant_gates():
    """Forward-scan joins and alternate elimination require constant."""
    assert optimization_allowed("forward-scan-join", get_scheme("anysum").properties)
    assert optimization_allowed("alternate-elimination", get_scheme("anysum").properties)
    for name in SCHEME_NAMES:
        if name == "anysum":
            continue
        props = get_scheme(name).properties
        assert not optimization_allowed("forward-scan-join", props), name
        assert not optimization_allowed("alternate-elimination", props), name


def test_eager_aggregation_blocked_row_first():
    # Join-Normalized is row-first here (the paper's piecewise disjunctive
    # combinator is provably non-diagonal; see EXPERIMENTS.md), so it
    # joins the blocked set — a documented deviation from Table 3.
    for name in ("event-model", "bestsum-mindist", "join-normalized"):
        assert not optimization_allowed(
            "eager-aggregation", get_scheme(name).properties
        ), name
    for name in ("anysum", "sumbest", "lucene", "meansum"):
        assert optimization_allowed(
            "eager-aggregation", get_scheme(name).properties
        ), name


def test_rank_join_requires_diagonal_and_monotone():
    assert optimization_allowed("rank-join", get_scheme("anysum").properties)
    # Column-first (not diagonal):
    assert not optimization_allowed("rank-join", get_scheme("sumbest").properties)
    # Row-first:
    assert not optimization_allowed("rank-join", get_scheme("event-model").properties)
    assert not optimization_allowed("rank-join", get_scheme("join-normalized").properties)


def test_pre_counting_blocked_for_positional():
    assert not optimization_allowed(
        "pre-counting", get_scheme("bestsum-mindist").properties
    )
    assert optimization_allowed("pre-counting", get_scheme("anysum").properties)


def test_table_3_derivation():
    """Table 3 = Table 1 x Table 2: the full per-scheme columns."""
    table3 = {name: set(allowed_optimizations(get_scheme(name).properties))
              for name in SCHEME_NAMES}
    classical = {"sort-elimination", "join-reordering", "selection-pushing",
                 "zigzag-join", "eager-counting"}
    for name, allowed in table3.items():
        assert classical <= allowed, name
    assert "forward-scan-join" in table3["anysum"]
    assert "alternate-elimination" in table3["anysum"]
    assert "eager-aggregation" not in table3["bestsum-mindist"]
    assert "pre-counting" not in table3["bestsum-mindist"]
    assert "rank-union" in table3["meansum"]


def test_unknown_optimization_rejected():
    with pytest.raises(OptimizationError):
        optimization_allowed("teleportation", get_scheme("anysum").properties)


def test_require_allowed_raises_with_requirement_text():
    with pytest.raises(OptimizationError) as err:
        require_allowed("alternate-elimination", get_scheme("meansum").properties)
    assert "constant" in str(err.value)


def test_table1_rows_render():
    rows = table1_rows()
    assert len(rows) == len(OPTIMIZATIONS)
    by_name = {r["optimization"]: r for r in rows}
    assert by_name["forward-scan-join"]["operator requirement"] == "constant"
    assert by_name["eager-aggregation"]["direction requirement"] == "not row-first"
    assert by_name["selection-pushing"]["operator requirement"] == "-"
