"""Cost model tests (the future-work extension of Section 8)."""

import pytest

from repro.graft.canonical import canonical_plan
from repro.graft.cost import (
    best_join_order,
    estimate,
    explain_with_costs,
    predicate_selectivity,
)
from repro.graft.optimizer import Optimizer
from repro.ma.nodes import Atom, Join, PreCountAtom
from repro.ma.translate import matching_subplan
from repro.mcalc.ast import Pred
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


class TestLeafEstimates:
    def test_atom_estimate_is_exact(self, tiny_index):
        e = estimate(Atom("p0", "dog"), tiny_index)
        assert e.docs == tiny_index.document_frequency("dog")
        assert e.rows == tiny_index.total_positions("dog")
        assert e.cost == e.rows

    def test_precount_cheaper_than_atom(self, tiny_index):
        atom = estimate(Atom("p0", "dog"), tiny_index)
        pre = estimate(PreCountAtom("p0", "dog"), tiny_index)
        assert pre.cost < atom.cost
        assert pre.rows == pre.docs

    def test_unknown_term(self, tiny_index):
        e = estimate(Atom("p0", "qzxv"), tiny_index)
        assert e.docs == e.rows == e.cost == 0


class TestJoinEstimates:
    def test_join_docs_shrink(self, tiny_index):
        j = Join(Atom("a", "quick"), Atom("b", "fox"))
        e = estimate(j, tiny_index)
        assert e.docs <= min(
            tiny_index.document_frequency("quick"),
            tiny_index.document_frequency("fox"),
        ) + 1e-9

    def test_predicates_reduce_rows(self, tiny_index):
        plain = Join(Atom("a", "quick"), Atom("b", "fox"))
        constrained = Join(
            Atom("a", "quick"), Atom("b", "fox"),
            (Pred("DISTANCE", ("a", "b"), (1,)),),
        )
        assert estimate(constrained, tiny_index).rows < \
            estimate(plain, tiny_index).rows

    def test_selectivity_ordering(self):
        tight = predicate_selectivity(Pred("DISTANCE", ("a", "b"), (1,)), 100)
        loose = predicate_selectivity(Pred("WINDOW", ("a", "b"), (50,)), 100)
        assert tight < loose <= 1.0


class TestWholePlans:
    def test_optimized_plan_estimated_cheaper_than_canonical(self, tiny_index):
        q = parse_query("quick fox dog")
        scheme = get_scheme("anysum")
        canonical, _ = canonical_plan(q, scheme)
        optimized = Optimizer(scheme, tiny_index).optimize(q).plan
        assert estimate(optimized, tiny_index).cost < \
            estimate(canonical, tiny_index).cost

    def test_every_paper_query_estimable(self):
        from repro.bench.workload import bench_fixture

        fx = bench_fixture(num_docs=300)
        scheme = get_scheme("meansum")
        for q in fx.queries.values():
            res = Optimizer(scheme, fx.index).optimize(q)
            e = estimate(res.plan, fx.index)
            assert e.cost > 0

    def test_explain_with_costs_annotates_every_node(self, tiny_index):
        q = parse_query('(quick fox)WINDOW[5] dog')
        res = Optimizer(get_scheme("sumbest"), tiny_index).optimize(q)
        text = explain_with_costs(res.plan, tiny_index)
        nodes = sum(1 for _ in res.plan.walk())
        assert text.count("cost~") == nodes


class TestJoinOrdering:
    def test_exhaustive_puts_selective_first(self, tiny_index):
        parts = [Atom("a", "dog"), Atom("b", "lazy"), Atom("c", "fox")]
        ordered = best_join_order(parts, tiny_index)
        assert ordered[0].keyword == "lazy"  # rarest drives

    def test_fallback_to_greedy_beyond_limit(self, tiny_index):
        parts = [Atom(f"v{i}", kw) for i, kw in enumerate(
            ["dog", "lazy", "fox", "quick", "brown", "the", "show"]
        )]
        ordered = best_join_order(parts, tiny_index, max_exhaustive=4)
        costs = [estimate(p, tiny_index).cost for p in ordered]
        assert costs == sorted(costs)

    def test_single_input(self, tiny_index):
        parts = [Atom("a", "dog")]
        assert best_join_order(parts, tiny_index) == parts


class TestCostBasedOptimizerOption:
    def test_cost_based_order_is_score_consistent(
        self, tiny_collection, tiny_index, tiny_ctx
    ):
        from repro.exec.engine import execute, make_runtime
        from repro.graft.optimizer import OptimizerOptions
        from repro.sa.reference import rank_with_oracle

        from tests.conftest import assert_same_ranking

        q = parse_query('quick (fox | "lazy dog") dog')
        scheme = get_scheme("meansum")
        options = OptimizerOptions(cost_based_join_order=True)
        res = Optimizer(scheme, tiny_index, options).optimize(q)
        assert "join-reordering(cost)" in res.applied
        got = execute(res.plan, make_runtime(tiny_index, scheme, res.info, tiny_ctx))
        want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
        assert_same_ranking(got, want)

    def test_cost_based_never_worse_than_heuristic_estimate(self, tiny_index):
        from repro.graft.optimizer import OptimizerOptions
        from repro.ma.translate import matching_subplan
        from repro.graft.rules import apply_join_reordering

        q = parse_query("dog fox quick lazy")
        heuristic = apply_join_reordering(matching_subplan(q), tiny_index)
        cost_based = apply_join_reordering(
            matching_subplan(q), tiny_index, cost_based=True
        )
        assert estimate(cost_based, tiny_index).cost <= \
            estimate(heuristic, tiny_index).cost + 1e-9
