"""Score consistency (Definition 1) — the paper's central invariant.

For every scoring scheme and every plan the optimizer can produce (all
option subsets, including forward-scan joins and rank joins where valid),
the (document, score) results must equal those of the reference semantics
— the brute-force oracle matches aggregated per Section 4.  Checked on
fixed workloads and on hypothesis-generated random corpora and queries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.collection import DocumentCollection
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.index.builder import build_index
from repro.mcalc.parser import parse_query
from repro.sa.context import IndexScoringContext
from repro.sa.reference import rank_with_oracle
from repro.sa.registry import get_scheme

from tests.conftest import SCHEME_NAMES, TINY_QUERIES, assert_same_ranking


def run(plan_result, index, scheme, ctx=None):
    runtime = make_runtime(index, scheme, plan_result.info, ctx)
    return execute(plan_result.plan, runtime)


class TestFixedWorkload:
    @pytest.mark.parametrize("text", TINY_QUERIES)
    def test_canonical_equals_oracle(self, text, scheme, tiny_collection, tiny_index, tiny_ctx):
        q = parse_query(text)
        got = run(Optimizer(scheme).canonical(q), tiny_index, scheme, tiny_ctx)
        want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
        assert_same_ranking(got, want)

    @pytest.mark.parametrize("text", TINY_QUERIES)
    def test_optimized_equals_oracle(self, text, scheme, tiny_collection, tiny_index, tiny_ctx):
        q = parse_query(text)
        got = run(
            Optimizer(scheme, tiny_index).optimize(q), tiny_index, scheme, tiny_ctx
        )
        want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
        assert_same_ranking(got, want)

    @pytest.mark.parametrize("text", TINY_QUERIES)
    def test_forward_scan_plans_consistent(self, text, tiny_collection, tiny_index, tiny_ctx):
        scheme = get_scheme("anysum")
        q = parse_query(text)
        res = Optimizer(
            scheme, tiny_index, OptimizerOptions(forward_scan=True)
        ).optimize(q)
        got = run(res, tiny_index, scheme, tiny_ctx)
        want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
        assert_same_ranking(got, want)


OPTION_TOGGLES = (
    "selection_pushing",
    "eager_counting",
    "pre_counting",
    "eager_aggregation",
    "alternate_elimination",
    "sort_elimination",
)


class TestOptionSubsets:
    """Every subset of rewrites must stay consistent, not just the full
    pipeline — a rewrite must not depend on a later one for correctness."""

    @pytest.mark.parametrize("disabled", OPTION_TOGGLES)
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_each_single_toggle_off(
        self, disabled, scheme_name, tiny_collection, tiny_index, tiny_ctx
    ):
        scheme = get_scheme(scheme_name)
        options = OptimizerOptions(**{disabled: False})
        q = parse_query('quick (fox | "lazy dog") show')
        got = run(
            Optimizer(scheme, tiny_index, options).optimize(q),
            tiny_index, scheme, tiny_ctx,
        )
        want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
        assert_same_ranking(got, want)


# ---------------------------------------------------------------------------
# Randomized corpora and queries.
# ---------------------------------------------------------------------------

WORDS = ("aa", "bb", "cc", "dd", "ee")

documents = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=12),
    min_size=1,
    max_size=6,
)


@st.composite
def query_texts(draw):
    """Random shorthand queries over the tiny vocabulary."""
    def term():
        return draw(st.sampled_from(WORDS))

    items = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(
            ("term", "phrase", "disj", "prox", "window")
        ))
        if kind == "term":
            items.append(term())
        elif kind == "phrase":
            items.append(f'"{term()} {term()}"')
        elif kind == "disj":
            items.append(f"({term()} | {term()})")
        elif kind == "prox":
            n = draw(st.integers(min_value=1, max_value=6))
            items.append(f"({term()} {term()})PROXIMITY[{n}]")
        else:
            n = draw(st.integers(min_value=2, max_value=8))
            items.append(f"({term()} {term()})WINDOW[{n}]")
    return " ".join(items)


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
@settings(max_examples=25, deadline=None)
@given(docs=documents, text=query_texts())
def test_random_corpus_and_query(scheme_name, docs, text):
    scheme = get_scheme(scheme_name)
    collection = DocumentCollection()
    for tokens in docs:
        collection.add_tokens(tokens)
    index = build_index(collection)
    ctx = IndexScoringContext(index)
    q = parse_query(text)
    want = rank_with_oracle(scheme, ctx, q, collection)
    got = run(Optimizer(scheme, index).optimize(q), index, scheme, ctx)
    assert_same_ranking(got, want)


@settings(max_examples=15, deadline=None)
@given(docs=documents, text=query_texts())
def test_random_forward_scan_consistency(docs, text):
    scheme = get_scheme("anysum")
    collection = DocumentCollection()
    for tokens in docs:
        collection.add_tokens(tokens)
    index = build_index(collection)
    ctx = IndexScoringContext(index)
    q = parse_query(text)
    want = rank_with_oracle(scheme, ctx, q, collection)
    got = run(
        Optimizer(scheme, index, OptimizerOptions(forward_scan=True)).optimize(q),
        index, scheme, ctx,
    )
    assert_same_ranking(got, want)


class TestPairwiseToggles:
    """Rewrites must also compose correctly when *two* are missing —
    catches rules that silently rely on each other."""

    PAIRS = (
        ("selection_pushing", "eager_aggregation"),
        ("eager_counting", "sort_elimination"),
        ("pre_counting", "alternate_elimination"),
        ("eager_aggregation", "sort_elimination"),
    )

    @pytest.mark.parametrize("pair", PAIRS)
    @pytest.mark.parametrize("scheme_name", ("anysum", "sumbest", "meansum"))
    def test_pair_off(self, pair, scheme_name, tiny_collection, tiny_index, tiny_ctx):
        scheme = get_scheme(scheme_name)
        options = OptimizerOptions(**{name: False for name in pair})
        q = parse_query('quick (fox | "lazy dog") show')
        got = run(
            Optimizer(scheme, tiny_index, options).optimize(q),
            tiny_index, scheme, tiny_ctx,
        )
        want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
        assert_same_ranking(got, want)


class TestPlanTextProvenance:
    def test_search_outcome_carries_plan(self, tiny_collection):
        from repro.api import SearchEngine

        engine = SearchEngine(tiny_collection)
        out = engine.search("quick fox", scheme="anysum")
        assert "pi[omega]" in out.plan_text
        assert "delta[doc]" in out.plan_text
