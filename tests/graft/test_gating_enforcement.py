"""The optimizer's gating contract: it never applies an optimization the
scheme's properties forbid (Table 3 enforced, not just derived)."""

import pytest

from repro.bench.workload import PAPER_QUERIES, bench_fixture
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.graft.plan import AlternateElim, GroupScore, ScoreInit
from repro.graft.validity import allowed_optimizations
from repro.ma.nodes import Join, PreCountAtom, Sort
from repro.sa.registry import available_schemes, get_scheme

#: Map from an applied-rewrite tag to the Table-1 optimization it must be
#: licensed by (tags without an entry are always-valid classical rewrites).
GATED = {
    "pre-counting": "pre-counting",
    "eager-aggregation": "eager-aggregation",
    "alternate-elimination": "alternate-elimination",
    "forward-scan-join": "forward-scan-join",
    "sort-elimination": "sort-elimination",
}


@pytest.fixture(scope="module")
def fx():
    return bench_fixture(num_docs=200)


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
@pytest.mark.parametrize("query_name", sorted(PAPER_QUERIES))
def test_applied_rewrites_are_licensed(scheme_name, query_name, fx):
    scheme = get_scheme(scheme_name)
    allowed = set(allowed_optimizations(scheme.properties))
    options = OptimizerOptions(forward_scan=True)  # tempt every rule
    res = Optimizer(scheme, fx.index, options).optimize(fx.queries[query_name])
    for tag in res.applied:
        requirement = GATED.get(tag)
        if requirement is None:
            continue
        if tag == "pre-counting":
            # Per-query column refinement may license it beyond the
            # scheme-level property (Lucene); verified structurally below.
            continue
        assert requirement in allowed, (scheme_name, query_name, tag)


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
def test_plan_structure_respects_gates(scheme_name, fx):
    """Independent of the applied-list, the plan *structure* must not
    contain gated operators for schemes that forbid them."""
    scheme = get_scheme(scheme_name)
    props = scheme.properties
    res = Optimizer(
        scheme, fx.index, OptimizerOptions(forward_scan=True)
    ).optimize(fx.queries["Q8"])
    nodes = list(res.plan.walk())
    if not props.constant:
        assert not any(isinstance(n, AlternateElim) for n in nodes)
        assert not any(
            isinstance(n, Join) and n.algorithm == "forward" for n in nodes
        )
    if props.directional == "row":
        # Row-first: no group-by may sit below a Phi projection's input
        # other than the canonical top one; equivalently, no
        # counts-incorporated partial aggregations exist.
        assert not any(
            isinstance(n, GroupScore) and n.counts_incorporated
            for n in nodes
        )
    if props.positional and not props.positional_per_query:
        assert not any(isinstance(n, PreCountAtom) for n in nodes)
    if not props.alt_commutes:
        assert any(isinstance(n, Sort) for n in nodes)


def test_precount_columns_respect_per_query_positionality(fx):
    """Lucene: pre-counted leaves may only cover non-predicate columns."""
    scheme = get_scheme("lucene")
    q = fx.queries["Q9"]  # PROXIMITY group + free keyword 'service'
    res = Optimizer(scheme, fx.index).optimize(q)
    positional = scheme.positional_vars(q)
    for node in res.plan.walk():
        if isinstance(node, PreCountAtom):
            assert node.var not in positional


def test_scale_by_count_never_in_counts_pending_plans(fx):
    """Discipline coherence: ScoreInit scaling appears only beneath
    counts-incorporated group-bys."""
    for scheme_name in sorted(available_schemes()):
        scheme = get_scheme(scheme_name)
        res = Optimizer(scheme, fx.index).optimize(fx.queries["Q5"])
        scaled = [
            n for n in res.plan.walk()
            if isinstance(n, ScoreInit) and n.scale_by_count
        ]
        incorporated = [
            n for n in res.plan.walk()
            if isinstance(n, GroupScore) and n.counts_incorporated
        ]
        if scaled:
            assert incorporated, scheme_name
