"""Metrics registry: counter/histogram semantics, export formats, and the
engine- and store-level recording hooks."""

import json

import pytest

from repro.api import SearchEngine
from repro.errors import GraftError
from repro.exec.iterator import ExecutionMetrics
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    record_execution_metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_increments_and_rejects_negative(registry):
    fam = registry.counter("t_total", "help")
    fam.child().inc()
    fam.child().inc(4)
    assert fam.child().value == 5
    with pytest.raises(GraftError):
        fam.child().inc(-1)


def test_labeled_children_are_independent(registry):
    fam = registry.counter("t_total", "help", labelnames=("kind",))
    fam.labels(kind="a").inc()
    fam.labels(kind="b").inc(2)
    assert fam.labels(kind="a").value == 1
    assert fam.labels(kind="b").value == 2


def test_redeclaration_idempotent_but_kind_mismatch_raises(registry):
    registry.counter("t_total", "help")
    registry.counter("t_total", "help")  # same declaration: fine
    with pytest.raises(GraftError):
        registry.histogram("t_total", "help")
    with pytest.raises(GraftError):
        registry.counter("t_total", "help", labelnames=("x",))


def test_invalid_metric_name_rejected(registry):
    with pytest.raises(GraftError):
        registry.counter("0bad-name", "help")


def test_histogram_buckets_cumulative(registry):
    fam = registry.histogram("t_seconds", "help", buckets=(0.1, 1.0, 10.0))
    h = fam.child()
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    sample = registry.snapshot()["t_seconds"]["samples"][0]
    assert sample["count"] == 4
    assert sample["buckets"]["0.1"] == 1
    assert sample["buckets"]["1.0"] == 2
    assert sample["buckets"]["10.0"] == 3  # cumulative; 50.0 only in +Inf
    assert sample["sum"] == pytest.approx(55.55)


def test_histogram_time_context_manager(registry):
    fam = registry.histogram("t_seconds", "help")
    with fam.child().time():
        pass
    assert registry.snapshot()["t_seconds"]["samples"][0]["count"] == 1


def test_snapshot_roundtrips_through_json(registry):
    registry.counter("t_total", "help", labelnames=("k",)).labels(k="x").inc()
    registry.histogram("t_seconds", "help").child().observe(0.2)
    decoded = json.loads(registry.to_json())
    assert decoded["t_total"]["kind"] == "counter"
    assert decoded["t_seconds"]["kind"] == "histogram"


def test_prometheus_text_format(registry):
    registry.counter(
        "t_total", "things counted", labelnames=("kind",)
    ).labels(kind="a").inc(3)
    registry.histogram("t_seconds", "latency", buckets=(1.0,)).child().observe(0.5)
    text = registry.to_prometheus_text()
    assert "# HELP t_total things counted" in text
    assert "# TYPE t_total counter" in text
    assert 't_total{kind="a"} 3' in text
    assert '# TYPE t_seconds histogram' in text
    assert 't_seconds_bucket{le="1"} 1' in text
    assert 't_seconds_bucket{le="+Inf"} 1' in text
    assert "t_seconds_count 1" in text
    assert text.endswith("\n")


def test_reset_clears_values_not_declarations(registry):
    fam = registry.counter("t_total", "help")
    fam.child().inc(7)
    registry.reset()
    assert registry.counter("t_total", "help").child().value == 0


def test_record_execution_metrics_folds_counters(registry):
    m = ExecutionMetrics(
        positions_scanned=10, doc_entries_scanned=4, rows_joined=3,
        rows_grouped=2, rows_charged=9, limit_tripped="max_rows",
    )
    record_execution_metrics(m, registry)
    snap = registry.snapshot()
    assert snap["graft_positions_scanned_total"]["samples"][0]["value"] == 10
    assert snap["graft_limits_tripped_total"]["samples"][0]["labels"] == {
        "limit": "max_rows"
    }


def test_search_records_process_metrics():
    eng = SearchEngine()
    eng.add_many(["alpha beta", "beta gamma", "alpha"])
    before = _query_count("sumbest", "ok")
    eng.search("alpha beta")
    assert _query_count("sumbest", "ok") == before + 1


def _query_count(scheme: str, status: str) -> float:
    try:
        fam = REGISTRY.get("graft_queries_total")
    except GraftError:
        return 0.0
    for key, child in fam.samples():
        if dict(zip(fam.labelnames, key)) == {"scheme": scheme, "status": status}:
            return child.value
    return 0.0


def test_store_operations_record_metrics(tmp_path):
    base_appends = _counter_value("graft_wal_appends_total")
    base_ckpts = _counter_value("graft_store_checkpoints_total")
    with SearchEngine.open(tmp_path / "store") as eng:
        eng.add("alpha beta gamma")
        eng.checkpoint()
    assert _counter_value("graft_wal_appends_total") == base_appends + 1
    assert _counter_value("graft_store_checkpoints_total") >= base_ckpts + 1


def _counter_value(name: str) -> float:
    try:
        fam = REGISTRY.get(name)
    except GraftError:
        return 0.0
    return sum(child.value for _, child in fam.samples())
