"""Metrics registry: counter/histogram semantics, export formats, and the
engine- and store-level recording hooks."""

import json

import pytest

from repro.api import SearchEngine
from repro.errors import GraftError
from repro.exec.iterator import ExecutionMetrics
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    record_execution_metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_increments_and_rejects_negative(registry):
    fam = registry.counter("t_total", "help")
    fam.child().inc()
    fam.child().inc(4)
    assert fam.child().value == 5
    with pytest.raises(GraftError):
        fam.child().inc(-1)


def test_labeled_children_are_independent(registry):
    fam = registry.counter("t_total", "help", labelnames=("kind",))
    fam.labels(kind="a").inc()
    fam.labels(kind="b").inc(2)
    assert fam.labels(kind="a").value == 1
    assert fam.labels(kind="b").value == 2


def test_redeclaration_idempotent_but_kind_mismatch_raises(registry):
    registry.counter("t_total", "help")
    registry.counter("t_total", "help")  # same declaration: fine
    with pytest.raises(GraftError):
        registry.histogram("t_total", "help")
    with pytest.raises(GraftError):
        registry.counter("t_total", "help", labelnames=("x",))


def test_invalid_metric_name_rejected(registry):
    with pytest.raises(GraftError):
        registry.counter("0bad-name", "help")


def test_histogram_buckets_cumulative(registry):
    fam = registry.histogram("t_seconds", "help", buckets=(0.1, 1.0, 10.0))
    h = fam.child()
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    sample = registry.snapshot()["t_seconds"]["samples"][0]
    assert sample["count"] == 4
    assert sample["buckets"]["0.1"] == 1
    assert sample["buckets"]["1.0"] == 2
    assert sample["buckets"]["10.0"] == 3  # cumulative; 50.0 only in +Inf
    assert sample["sum"] == pytest.approx(55.55)


def test_histogram_time_context_manager(registry):
    fam = registry.histogram("t_seconds", "help")
    with fam.child().time():
        pass
    assert registry.snapshot()["t_seconds"]["samples"][0]["count"] == 1


def test_snapshot_roundtrips_through_json(registry):
    registry.counter("t_total", "help", labelnames=("k",)).labels(k="x").inc()
    registry.histogram("t_seconds", "help").child().observe(0.2)
    decoded = json.loads(registry.to_json())
    assert decoded["t_total"]["kind"] == "counter"
    assert decoded["t_seconds"]["kind"] == "histogram"


def test_prometheus_text_format(registry):
    registry.counter(
        "t_total", "things counted", labelnames=("kind",)
    ).labels(kind="a").inc(3)
    registry.histogram("t_seconds", "latency", buckets=(1.0,)).child().observe(0.5)
    text = registry.to_prometheus_text()
    assert "# HELP t_total things counted" in text
    assert "# TYPE t_total counter" in text
    assert 't_total{kind="a"} 3' in text
    assert '# TYPE t_seconds histogram' in text
    assert 't_seconds_bucket{le="1"} 1' in text
    assert 't_seconds_bucket{le="+Inf"} 1' in text
    assert "t_seconds_count 1" in text
    assert text.endswith("\n")


def test_prometheus_label_value_escaping(registry):
    """Quotes, backslashes and newlines in label *values* must be escaped
    per the exposition format, or one hostile value corrupts the scrape."""
    fam = registry.counter("t_total", "help", labelnames=("kind",))
    fam.labels(kind='say "hi"').inc()
    fam.labels(kind="back\\slash").inc(2)
    fam.labels(kind="two\nlines").inc(3)
    text = registry.to_prometheus_text()
    assert 't_total{kind="say \\"hi\\""} 1' in text
    assert 't_total{kind="back\\\\slash"} 2' in text
    assert 't_total{kind="two\\nlines"} 3' in text
    # The raw newline never reaches the output mid-sample.
    for line in text.splitlines():
        assert line.startswith(("#", "t_total"))


def test_prometheus_help_escaping(registry):
    registry.counter("t_total", "line one\nline two \\ done").child().inc()
    text = registry.to_prometheus_text()
    assert "# HELP t_total line one\\nline two \\\\ done" in text


def test_prometheus_labeled_histogram_sum_count_and_inf(registry):
    """_sum/_count carry the family labels (without le), and +Inf always
    equals the total observation count."""
    fam = registry.histogram(
        "t_seconds", "help", labelnames=("route",), buckets=(0.1, 1.0)
    )
    h = fam.labels(route="/search")
    for v in (0.0625, 0.5, 5.0):  # exactly representable: sum is exact
        h.observe(v)
    text = registry.to_prometheus_text()
    assert 't_seconds_bucket{le="0.1",route="/search"} 1' in text
    assert 't_seconds_bucket{le="1",route="/search"} 2' in text
    assert 't_seconds_bucket{le="+Inf",route="/search"} 3' in text
    assert 't_seconds_count{route="/search"} 3' in text
    assert 't_seconds_sum{route="/search"} 5.5625' in text


def test_prometheus_value_formatting(registry):
    """Integral floats print as integers; non-integral keep full repr."""
    fam = registry.gauge("t_gauge", "help", labelnames=("k",))
    fam.labels(k="int").set(3.0)
    fam.labels(k="frac").set(0.1)
    text = registry.to_prometheus_text()
    assert 't_gauge{k="int"} 3' in text
    assert 't_gauge{k="frac"} 0.1' in text


def test_concurrent_label_child_creation_converges_on_one_object(registry):
    """Threads racing to create the same labeled child must converge on
    one object — a lost child means silently dropped increments.  (The
    fix is ``setdefault`` in :meth:`MetricFamily.labels`; plain
    assignment let the loser's object shadow the winner's.)"""
    import threading

    fam = registry.counter("t_total", "help", labelnames=("kind",))
    threads = 8
    for round_no in range(50):  # fresh label each round: creation races
        barrier = threading.Barrier(threads)
        got: list[object] = []
        lock = threading.Lock()

        def grab():
            barrier.wait()  # maximize create-time contention
            child = fam.labels(kind=f"k{round_no}")
            with lock:
                got.append(child)

        workers = [threading.Thread(target=grab) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len({id(child) for child in got}) == 1
        # And the converged object is the one the family keeps serving.
        assert got[0] is fam.labels(kind=f"k{round_no}")


def test_reset_clears_values_not_declarations(registry):
    fam = registry.counter("t_total", "help")
    fam.child().inc(7)
    registry.reset()
    assert registry.counter("t_total", "help").child().value == 0


def test_record_execution_metrics_folds_counters(registry):
    m = ExecutionMetrics(
        positions_scanned=10, doc_entries_scanned=4, rows_joined=3,
        rows_grouped=2, rows_charged=9, limit_tripped="max_rows",
    )
    record_execution_metrics(m, registry)
    snap = registry.snapshot()
    assert snap["graft_positions_scanned_total"]["samples"][0]["value"] == 10
    assert snap["graft_limits_tripped_total"]["samples"][0]["labels"] == {
        "limit": "max_rows"
    }


def test_search_records_process_metrics():
    eng = SearchEngine()
    eng.add_many(["alpha beta", "beta gamma", "alpha"])
    before = _query_count("sumbest", "ok")
    eng.search("alpha beta")
    assert _query_count("sumbest", "ok") == before + 1


def _query_count(scheme: str, status: str) -> float:
    try:
        fam = REGISTRY.get("graft_queries_total")
    except GraftError:
        return 0.0
    for key, child in fam.samples():
        if dict(zip(fam.labelnames, key)) == {"scheme": scheme, "status": status}:
            return child.value
    return 0.0


def test_store_operations_record_metrics(tmp_path):
    base_appends = _counter_value("graft_wal_appends_total")
    base_ckpts = _counter_value("graft_store_checkpoints_total")
    with SearchEngine.open(tmp_path / "store") as eng:
        eng.add("alpha beta gamma")
        eng.checkpoint()
    assert _counter_value("graft_wal_appends_total") == base_appends + 1
    assert _counter_value("graft_store_checkpoints_total") >= base_ckpts + 1


def _counter_value(name: str) -> float:
    try:
        fam = REGISTRY.get(name)
    except GraftError:
        return 0.0
    return sum(child.value for _, child in fam.samples())
