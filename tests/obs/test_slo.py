"""The SLO engine under a deterministic clock.

Hours of traffic replay in microseconds: a fake monotonic clock drives
the multi-window multi-burn-rate evaluation through the full breach
lifecycle — healthy, breaching under an injected fault, recovered once
the short confirmation window drains of bad events.
"""

from __future__ import annotations

import pytest

from repro.errors import GraftError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SloEngine,
    SloObjective,
    parse_slo_spec,
)


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


#: One tight window so a test drives a full breach cycle in seconds of
#: fake time: long 60s / short 5s confirmation, page above 2x burn.
TIGHT = (BurnWindow("fast", long_s=60.0, short_s=5.0, max_burn_rate=2.0),)


def make_engine(objectives=None, *, windows=TIGHT, clock=None, **kw):
    clock = clock or FakeClock()
    engine = SloEngine(
        objectives or [parse_slo_spec("availability:0.99")],
        windows=windows,
        clock=clock,
        eval_interval_s=0.0,
        registry=MetricsRegistry(),
        **kw,
    )
    return engine, clock


# -- spec parsing -----------------------------------------------------------


def test_parse_latency_spec_full_form():
    obj = parse_slo_spec("latency:p99:50ms:0.99")
    assert obj.kind == "latency"
    assert obj.threshold_ms == 50.0
    assert obj.target == 0.99
    assert obj.percentile == "p99"
    assert obj.name == "latency_p99_50ms"


def test_parse_latency_spec_seconds_and_default_target():
    obj = parse_slo_spec("latency:p95:0.2s")
    assert obj.threshold_ms == 200.0
    # Target defaults to the stated percentile: p95 -> 0.95.
    assert obj.target == 0.95


def test_parse_latency_spec_unit_defaults_to_ms():
    assert parse_slo_spec("latency:p50:75").threshold_ms == 75.0


def test_parse_availability_spec():
    obj = parse_slo_spec("availability:0.999")
    assert obj.kind == "availability"
    assert obj.target == 0.999
    assert obj.threshold_ms is None


@pytest.mark.parametrize("spec", [
    "",
    "latency",
    "latency:99:50ms",          # percentile must be pNN
    "latency:p99:50ms:1.5",     # target must be a 0.x fraction
    "availability:1.0",
    "availability:99.9",
    "uptime:0.99",
])
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(GraftError):
        parse_slo_spec(spec)


# -- objective & window validation ------------------------------------------


def test_objective_validation():
    with pytest.raises(GraftError):
        SloObjective(name="x", kind="throughput", target=0.9)
    with pytest.raises(GraftError):
        SloObjective(name="x", kind="availability", target=1.0)
    with pytest.raises(GraftError):
        SloObjective(name="x", kind="latency", target=0.9)  # no threshold


def test_is_good_semantics():
    lat = parse_slo_spec("latency:p99:50ms:0.99")
    assert lat.is_good(10.0, 200)
    assert not lat.is_good(60.0, 200)       # too slow
    assert not lat.is_good(10.0, 503)       # shed counts as bad
    avail = parse_slo_spec("availability:0.99")
    assert avail.is_good(9999.0, 200)       # latency irrelevant
    assert not avail.is_good(1.0, 500)
    assert not avail.is_good(1.0, 504)


def test_burn_window_validation():
    with pytest.raises(GraftError):
        BurnWindow("x", long_s=0, short_s=1, max_burn_rate=1.0)
    with pytest.raises(GraftError):
        BurnWindow("x", long_s=10, short_s=20, max_burn_rate=1.0)
    with pytest.raises(GraftError):
        BurnWindow("x", long_s=10, short_s=5, max_burn_rate=0.0)


def test_engine_constructor_validation():
    with pytest.raises(GraftError):
        SloEngine([], registry=MetricsRegistry())
    obj = parse_slo_spec("availability:0.99")
    with pytest.raises(GraftError):
        SloEngine([obj, obj], registry=MetricsRegistry())
    with pytest.raises(GraftError):
        SloEngine([obj], windows=(), registry=MetricsRegistry())


def test_default_windows_are_the_sre_workbook_pair():
    fast, slow = DEFAULT_WINDOWS
    assert (fast.long_s, fast.short_s, fast.max_burn_rate) == (
        3600.0, 300.0, 14.4)
    assert (slow.long_s, slow.short_s, slow.max_burn_rate) == (
        21600.0, 1800.0, 6.0)


# -- burn-rate math ---------------------------------------------------------


def test_all_good_traffic_burns_nothing():
    engine, clock = make_engine()
    for _ in range(200):
        engine.observe(5.0, 200)
        clock.advance(0.01)
    report = engine.evaluate()
    obj = report["objectives"][0]
    assert report["breaching"] is False
    assert obj["windows"]["fast"]["long_burn_rate"] == 0.0
    assert obj["budget"]["remaining_fraction"] == 1.0


def test_burn_rate_one_means_spending_exactly_the_budget():
    # 1% target budget, exactly 1% bad -> burn rate 1.0.
    engine, clock = make_engine([parse_slo_spec("availability:0.99")])
    for i in range(100):
        engine.observe(5.0, 500 if i == 0 else 200)
        clock.advance(0.01)
    obj = engine.evaluate()["objectives"][0]
    assert obj["windows"]["fast"]["long_burn_rate"] == pytest.approx(1.0)
    assert obj["budget"]["consumed_fraction"] == pytest.approx(1.0)
    assert obj["budget"]["remaining_fraction"] == pytest.approx(0.0)


def test_budget_accounting_half_spent():
    engine, clock = make_engine([parse_slo_spec("availability:0.99")])
    for i in range(1000):
        engine.observe(5.0, 500 if i % 200 == 0 else 200)  # 5/1000 bad
        clock.advance(0.001)
    budget = engine.evaluate()["objectives"][0]["budget"]
    assert budget["samples"] == 1000
    assert budget["bad"] == 5
    assert budget["consumed_fraction"] == pytest.approx(0.5)
    assert budget["remaining_fraction"] == pytest.approx(0.5)


def test_no_samples_is_not_a_breach():
    engine, _ = make_engine()
    report = engine.evaluate()
    assert report["breaching"] is False
    assert report["observed"] == 0


# -- the breach lifecycle ---------------------------------------------------


def test_breach_and_recovery_cycle():
    engine, clock = make_engine([parse_slo_spec("latency:p99:50ms:0.99")])

    # Phase 1: healthy traffic fills both windows.
    for _ in range(50):
        engine.observe(5.0, 200)
        clock.advance(0.05)
    assert engine.evaluate()["breaching"] is False
    assert engine.breaching() == []

    # Phase 2: a latency fault — every request blows the threshold.
    # 100% bad -> burn 100x, far above the 2x page threshold in both
    # the 60s long window and the 5s confirmation window.
    for _ in range(50):
        engine.observe(500.0, 200)
        clock.advance(0.05)
    report = engine.evaluate()
    assert report["breaching"] is True
    assert report["fast_burn_breaching"] is True
    assert engine.breaching() == ["latency_p99_50ms"]
    obj = report["objectives"][0]
    assert obj["state"] == "breaching"
    assert obj["windows"]["fast"]["breaching"] is True
    assert obj["measured_ms"] == pytest.approx(500.0, rel=0.01)

    # Phase 3: the fault clears.  Good traffic refills the short
    # confirmation window; the long window still holds the bad samples,
    # but multi-window breaching requires BOTH — the page stops fast.
    for _ in range(100):
        engine.observe(5.0, 200)
        clock.advance(0.1)  # 10s of recovery >> 5s short window
    report = engine.evaluate()
    assert report["breaching"] is False
    assert report["objectives"][0]["state"] == "ok"
    assert engine.breaching() == []


def test_breach_counter_increments_only_on_transition():
    engine, clock = make_engine()
    registry = engine._registry
    for _ in range(20):
        engine.observe(5.0, 500)
        clock.advance(0.05)

    def breaches() -> float:
        family = registry.snapshot().get("graft_slo_breaches_total")
        return sum(s["value"] for s in family["samples"]) if family else 0.0

    engine.evaluate()
    assert breaches() == 1.0
    engine.evaluate()   # still breaching: no second increment
    engine.evaluate()
    assert breaches() == 1.0


def test_metrics_families_updated():
    engine, clock = make_engine()
    for _ in range(10):
        engine.observe(5.0, 500)
        clock.advance(0.01)
    engine.evaluate()
    snap = engine._registry.snapshot()
    assert "graft_slo_burn_rate" in snap
    assert "graft_slo_breaching" in snap
    assert "graft_slo_budget_remaining" in snap
    breaching = snap["graft_slo_breaching"]["samples"][0]
    assert breaching["labels"]["objective"] == "availability_99"
    assert breaching["value"] == 1.0


# -- windowing & intake -----------------------------------------------------


def test_samples_beyond_the_horizon_are_pruned():
    engine, clock = make_engine()
    for _ in range(10):
        engine.observe(5.0, 500)  # all bad
        clock.advance(0.01)
    # Step past the 60s horizon: the fault ages out entirely.
    clock.advance(120.0)
    engine.observe(5.0, 200)
    report = engine.evaluate()
    assert report["breaching"] is False
    assert report["objectives"][0]["budget"]["samples"] == 1
    assert len(engine._samples) == 1


def test_max_samples_bounds_memory():
    engine, clock = make_engine(max_samples=100)
    for _ in range(500):
        engine.observe(1.0, 200)
    assert len(engine._samples) == 100
    assert engine.observed == 500


def test_maybe_evaluate_throttles_to_the_interval():
    engine, clock = make_engine()
    engine.eval_interval_s = 1.0
    engine.observe(5.0, 200)
    first = engine.maybe_evaluate()
    # Within the interval: the exact cached report object comes back.
    assert engine.maybe_evaluate() is first
    clock.advance(2.0)
    assert engine.maybe_evaluate() is not first


def test_multiple_objectives_judged_independently():
    engine, clock = make_engine([
        parse_slo_spec("availability:0.99"),
        parse_slo_spec("latency:p99:50ms:0.99"),
    ])
    # Slow but successful: availability is fine, latency breaches.
    for _ in range(50):
        engine.observe(500.0, 200)
        clock.advance(0.05)
    report = engine.evaluate()
    by_name = {o["name"]: o for o in report["objectives"]}
    assert by_name["availability_99"]["state"] == "ok"
    assert by_name["latency_p99_50ms"]["state"] == "breaching"
    assert engine.breaching() == ["latency_p99_50ms"]
