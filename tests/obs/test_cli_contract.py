"""The checked-in observability contract: ``repro search --profile
--json`` output must validate against ``tests/obs/trace_schema.json``.

CI runs this module explicitly; the schema file is the stable interface
downstream dashboards parse, so changing the payload shape means
changing the schema here in the same commit."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.schema import SchemaError, validate

SCHEMA_PATH = pathlib.Path(__file__).with_name("trace_schema.json")

DOCS = {
    "first": "alpha beta alpha gamma",
    "second": "beta gamma delta",
    "third": "alpha gamma epsilon beta alpha",
    "fourth": "delta epsilon",
    "fifth": "alpha beta beta",
}


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli_contract")
    docs = base / "docs"
    docs.mkdir()
    for name, text in DOCS.items():
        (docs / f"{name}.txt").write_text(text)
    idx = base / "idx"
    assert main(["index", str(docs), str(idx)]) == 0
    return str(idx)


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_PATH.read_text())


def profile_json(capsys, index_dir, query, *extra):
    assert main(
        ["search", index_dir, query, "--profile", "--json", *extra]
    ) == 0
    return json.loads(capsys.readouterr().out)


@pytest.mark.parametrize(
    "query", ["alpha", "alpha beta", "alpha or delta", "alpha and not beta"]
)
def test_profile_output_matches_schema(index_dir, schema, capsys, query):
    payload = profile_json(capsys, index_dir, query)
    validate(payload, schema)  # raises SchemaError on contract drift


def test_degraded_profile_output_matches_schema(index_dir, schema, capsys):
    payload = profile_json(
        capsys, index_dir, "alpha beta",
        "--max-rows", "1", "--on-limit", "partial",
    )
    validate(payload, schema)
    assert payload["limit_hit"] == "max_rows"


def test_audit_output_matches_schema(index_dir, schema, capsys):
    payload = profile_json(capsys, index_dir, "alpha beta", "--audit")
    validate(payload, schema)
    assert payload["audit"] is not None
    assert payload["audit"]["ok"] is True
    assert payload["audit"]["reference"] == "canonical"
    assert payload["audit"]["rules"]


def test_audit_field_null_without_flag(index_dir, schema, capsys):
    payload = profile_json(capsys, index_dir, "alpha beta")
    validate(payload, schema)
    assert payload["audit"] is None


def test_schema_rejects_audit_drift(index_dir, schema, capsys):
    payload = profile_json(capsys, index_dir, "alpha beta", "--audit")
    payload["audit"]["verdict"] = "fine"  # not part of the contract
    with pytest.raises(SchemaError):
        validate(payload, schema)
    del payload["audit"]["verdict"]
    payload["audit"]["divergence"] = "ranking_anomaly"  # unknown kind
    with pytest.raises(SchemaError):
        validate(payload, schema)


def test_schema_rejects_shape_drift(index_dir, schema, capsys):
    """The validator actually bites: a drifted payload must fail."""
    payload = profile_json(capsys, index_dir, "alpha beta")
    payload["unexpected_field"] = 1
    with pytest.raises(SchemaError):
        validate(payload, schema)
    del payload["unexpected_field"]
    del payload["trace"]["rows_out"]
    with pytest.raises(SchemaError):
        validate(payload, schema)
