"""Shadow-execution score-consistency auditing (repro.obs.audit)."""

from __future__ import annotations

import pytest

from repro.api import SearchEngine
from repro.errors import GraftError, ScoreConsistencyError
from repro.exec.limits import QueryLimits
from repro.obs.audit import (
    EXTRA_DOC,
    MISSING_DOC,
    SCORE_MISMATCH,
    AuditConfig,
    AuditEvent,
    Auditor,
    diff_rankings,
    shadow_audit,
)
from repro.obs.metrics import MetricsRegistry, audit_counters

from tests.conftest import TINY_QUERIES, make_tiny_collection


@pytest.fixture()
def engine():
    return SearchEngine(
        make_tiny_collection(),
        audit=AuditConfig(rate=1.0, oracle_max_docs=50),
    )


# -- diff_rankings ---------------------------------------------------------


def test_diff_equal_rankings_is_none():
    ranking = [(0, 1.5), (2, 0.5)]
    assert diff_rankings(ranking, list(ranking), 1e-7) is None


def test_diff_within_tolerance_is_none():
    assert diff_rankings([(0, 1.0 + 1e-9)], [(0, 1.0)], 1e-7) is None


def test_diff_missing_doc_reported_first():
    # Doc 1 missing AND doc 0 mis-scored: missing wins.
    got = [(0, 9.0)]
    want = [(0, 1.0), (1, 2.0)]
    assert diff_rankings(got, want, 1e-7) == (MISSING_DOC, 1, 2.0, None)


def test_diff_extra_doc():
    got = [(0, 1.0), (3, 0.5)]
    want = [(0, 1.0)]
    assert diff_rankings(got, want, 1e-7) == (EXTRA_DOC, 3, None, 0.5)


def test_diff_score_mismatch_lowest_doc_first():
    got = [(0, 1.0), (1, 5.0), (2, 7.0)]
    want = [(0, 1.0), (1, 2.0), (2, 3.0)]
    kind, doc, expected, actual = diff_rankings(got, want, 1e-7)
    assert (kind, doc) == (SCORE_MISMATCH, 1)
    assert expected == 2.0 and actual == 5.0


# -- config validation -----------------------------------------------------


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_config_rejects_bad_rate(rate):
    with pytest.raises(GraftError):
        AuditConfig(rate=rate)


def test_config_rejects_bad_mode():
    with pytest.raises(GraftError):
        AuditConfig(mode="panic")


def test_config_rejects_negative_tolerance():
    with pytest.raises(GraftError):
        AuditConfig(tolerance=-1e-9)


# -- engine integration ----------------------------------------------------


def test_every_query_audited_at_rate_one(engine):
    for text in TINY_QUERIES:
        outcome = engine.search(text)
        assert outcome.audit is not None, text
        assert outcome.audit.ok, outcome.audit.describe()
        assert outcome.audit.reference == "canonical+oracle"
        assert outcome.audit.query == text


def test_audit_records_fired_rules(engine):
    outcome = engine.search("quick fox")
    assert outcome.audit is not None
    assert "selection-pushing" in outcome.audit.rules
    assert outcome.audit.suspect_rules == ()


def test_audit_respects_top_k(engine):
    outcome = engine.search("quick (fox | dog)", top_k=2)
    assert len(outcome.results) <= 2
    assert outcome.audit is not None and outcome.audit.ok


def test_audit_covers_rank_join_path(engine):
    outcome = engine.search(
        "quick fox", scheme="anysum", top_k=3, use_rank_join=True
    )
    assert outcome.applied_optimizations == ["rank-join-topk"]
    assert outcome.audit is not None
    assert outcome.audit.ok, outcome.audit.describe()


def test_no_audit_config_means_no_auditor():
    eng = SearchEngine(make_tiny_collection())
    assert eng._auditor is None
    assert eng.search("quick fox").audit is None


def test_rate_zero_never_constructs_auditor():
    eng = SearchEngine(make_tiny_collection(), audit=AuditConfig(rate=0.0))
    assert eng._auditor is None
    assert eng.search("quick fox").audit is None


def test_sampling_is_deterministic():
    eng = SearchEngine(make_tiny_collection(), audit=AuditConfig(rate=0.5))
    audited = [
        eng.search("quick fox").audit is not None for _ in range(6)
    ]
    # Error-accumulator: exactly every other query, starting with the
    # first (0.5 + 0.5 reaches 1.0 on the... second query).
    assert audited == [False, True, False, True, False, True]


def test_quarter_rate_audits_every_fourth():
    eng = SearchEngine(make_tiny_collection(), audit=AuditConfig(rate=0.25))
    audited = [
        eng.search("quick fox").audit is not None for _ in range(8)
    ]
    assert audited == [False, False, False, True, False, False, False, True]


def test_degraded_outcome_not_audited_and_keeps_slot(engine):
    degraded = engine.search(
        "quick (fox | dog)",
        limits=QueryLimits(max_rows=1, on_limit="partial"),
    )
    assert degraded.degraded
    assert degraded.audit is None
    # The skipped query did not consume the sampling slot: the next
    # (healthy) query is still audited at rate 1.0.
    assert engine.search("quick fox").audit is not None


def test_strict_mode_raises_on_divergence():
    auditor = Auditor(AuditConfig(mode="strict"))
    event = AuditEvent(
        query="q", scheme="s", ok=False, reference="canonical",
        checked=1, divergence=SCORE_MISMATCH, doc_id=0,
        expected=1.0, got=2.0,
    )
    with pytest.raises(ScoreConsistencyError) as exc_info:
        auditor.raise_if_strict(event)
    assert exc_info.value.event is event
    auditor.raise_if_strict(
        AuditEvent(query="q", scheme="s", ok=True,
                   reference="canonical", checked=1)
    )  # ok events never raise


def test_log_mode_never_raises():
    auditor = Auditor(AuditConfig(mode="log"))
    auditor.raise_if_strict(
        AuditEvent(query="q", scheme="s", ok=False, reference="canonical",
                   checked=1, divergence=EXTRA_DOC, doc_id=1, got=1.0)
    )


def test_shadow_audit_counts_into_registry(tiny_index, tiny_collection):
    from repro.graft.optimizer import Optimizer
    from repro.mcalc.parser import parse_query
    from repro.sa.registry import get_scheme

    registry = MetricsRegistry()
    scheme = get_scheme("sumbest")
    query = parse_query("quick fox", tiny_collection.analyzer)
    result = Optimizer(scheme, tiny_index).optimize(query)
    from repro.exec.engine import execute, make_runtime

    ranked = execute(
        result.plan, make_runtime(tiny_index, scheme, result.info)
    )
    event = shadow_audit(
        tiny_index, scheme, query, ranked,
        rewrite_log=result.rewrites, applied=result.applied,
        registry=registry,
    )
    assert event.ok
    counter = audit_counters(registry)
    assert counter.labels(scheme="sumbest", result="ok").value == 1


def test_event_to_dict_round_trips_shape():
    event = AuditEvent(
        query="quick fox", scheme="sumbest", ok=True,
        reference="canonical", checked=4, rules=("selection-pushing",),
    )
    payload = event.to_dict()
    assert payload["ok"] is True
    assert payload["rules"] == ["selection-pushing"]
    assert payload["divergence"] is None
    assert "audit ok" in event.describe()
