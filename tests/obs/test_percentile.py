"""The shared percentile: one implementation, pinned at its edges.

``repro.obs.telemetry.percentile`` is the single percentile used by the
loadgen report, ``repro qlog stats``, the rolling latency window, and
the SLO engine — these edge cases defend all four at once.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import percentile


@pytest.mark.parametrize("q", [0.0, 0.5, 0.99, 1.0])
def test_empty_input_is_zero(q):
    assert percentile([], q) == 0.0


@pytest.mark.parametrize("q", [0.0, 0.5, 0.99, 1.0])
def test_single_sample_is_that_sample(q):
    assert percentile([42.5], q) == 42.5


def test_q0_is_the_minimum_and_q1_the_maximum():
    data = [5.0, 1.0, 9.0, 3.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 1.0) == 9.0


def test_unsorted_input_is_sorted_internally():
    shuffled = [30.0, 10.0, 40.0, 20.0]
    assert percentile(shuffled, 0.5) == percentile(sorted(shuffled), 0.5)
    assert percentile(shuffled, 0.5) == 25.0


@pytest.mark.parametrize("data,q,expected", [
    ([10.0, 20.0], 0.5, 15.0),            # midpoint between two ranks
    ([10.0, 20.0], 0.25, 12.5),           # quarter of the way
    ([0.0, 10.0, 20.0, 30.0], 0.5, 15.0),  # even count: interpolated
    ([0.0, 10.0, 20.0], 0.5, 10.0),       # odd count: exact middle
    ([1.0, 2.0, 3.0, 4.0, 5.0], 0.9, 4.6),
])
def test_interpolation_between_ranks(data, q, expected):
    assert percentile(data, q) == pytest.approx(expected)


def test_accepts_any_iterable_without_mutating_the_source():
    data = [3.0, 1.0, 2.0]
    assert percentile(iter(data), 0.5) == 2.0
    assert data == [3.0, 1.0, 2.0]  # sorted copy, not in place


def test_loadgen_qlog_and_slo_share_the_implementation():
    from repro.obs import qlog
    from repro.serve import loadgen

    assert loadgen.percentile is percentile
    assert qlog._percentile is percentile
