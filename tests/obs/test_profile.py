"""The opt-in stdlib sampling profiler."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, sample_for


def busy_loop(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


def test_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        SamplingProfiler(interval_s=0.0)


def test_double_start_raises_and_stop_is_idempotent():
    prof = SamplingProfiler(interval_s=0.005)
    prof.start()
    try:
        with pytest.raises(RuntimeError):
            prof.start()
    finally:
        prof.stop()
    prof.stop()  # second stop: no-op


def test_samples_a_busy_thread_into_collapsed_stacks():
    stop = threading.Event()
    worker = threading.Thread(target=busy_loop, args=(stop,), daemon=True)
    worker.start()
    try:
        prof = sample_for(0.2, interval_s=0.005)
    finally:
        stop.set()
        worker.join()
    assert prof.samples > 0
    text = prof.collapsed()
    assert text  # at least one stack observed
    for line in text.splitlines():
        stack, _, count = line.rpartition(" ")
        assert stack and int(count) >= 1
        # Frame labels are file:function, separated by semicolons.
        assert all(":" in frame for frame in stack.split(";"))
    # The busy worker's loop function shows up somewhere.
    assert "busy_loop" in text


def test_top_reports_leaf_frames():
    stop = threading.Event()
    worker = threading.Thread(target=busy_loop, args=(stop,), daemon=True)
    worker.start()
    try:
        prof = sample_for(0.15, interval_s=0.005)
    finally:
        stop.set()
        worker.join()
    top = prof.top(5)
    assert top
    assert all(count >= 1 for _, count in top)
    assert len(top) <= 5


def test_profiler_does_not_sample_itself():
    prof = sample_for(0.1, interval_s=0.005)
    assert "repro-profiler" not in prof.collapsed()
    assert "_sample_once" not in prof.collapsed()


def test_empty_profile_renders_empty():
    prof = SamplingProfiler()
    assert prof.collapsed() == ""
    assert prof.top() == []
    assert prof.samples == 0
