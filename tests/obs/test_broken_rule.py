"""The auditor catches a deliberately-broken rewrite rule.

The fixture optimizer drops the Table-1 validity gate entirely
(``_allowed`` always says yes), so alternate elimination — sound only
for constant schemes (Section 5.2.2) — fires under the non-constant
SumBest scheme and silently mis-scores documents.  This is the exact
failure mode shadow auditing exists for: the engine still returns a
plausible-looking ranking, and only the canonical-plan diff reveals it.
The auditor must (a) flag the divergence and (b) attribute it: the
fired-but-forbidden rule appears in ``suspect_rules`` by name.

(Eager aggregation cannot play the broken rule here: its *apply*
function re-checks row-firstness and raises, a deliberate second line of
defense.  Alternate elimination trusts its gate — dropping the gate is
silent, which is what makes it the right fixture.)
"""

from __future__ import annotations

import pytest

import repro.api
from repro.api import SearchEngine
from repro.errors import ScoreConsistencyError
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.obs.audit import SCORE_MISMATCH, AuditConfig
from repro.obs.metrics import MetricsRegistry

from tests.conftest import make_tiny_collection

#: Disjunctive query: alternate elimination rewrites the OR into a
#: single combined scan, which only preserves scores for constant
#: schemes.  Under SumBest the combined scan double-counts.
QUERY = "quick (fox | dog)"

#: Eager aggregation off so the pipeline reaches alternate elimination
#: (with it on, the eager-aggregation path returns early and the broken
#: gate never gets to do damage on this query).
OPTIONS = OptimizerOptions(eager_aggregation=False)


class GateDroppingOptimizer(Optimizer):
    """An optimizer whose Table-1 validity gate always says yes."""

    def _allowed(self, name: str) -> bool:
        return True


@pytest.fixture()
def broken_engine(monkeypatch):
    monkeypatch.setattr(repro.api, "Optimizer", GateDroppingOptimizer)
    return SearchEngine(
        make_tiny_collection(),
        audit=AuditConfig(rate=1.0),
    )


def test_auditor_catches_and_attributes_gate_dropping(broken_engine):
    outcome = broken_engine.search(QUERY, scheme="sumbest", options=OPTIONS)

    event = outcome.audit
    assert event is not None
    assert not event.ok
    assert event.divergence == SCORE_MISMATCH
    assert event.doc_id is not None
    assert event.expected is not None and event.got is not None
    assert event.expected != pytest.approx(event.got)
    # Attribution: the forbidden-but-fired rule is named, and nothing
    # legitimately-fired is blamed alongside it.
    assert event.suspect_rules == ("alternate-elimination",)
    assert "alternate-elimination" in event.rules
    assert "alternate-elimination" in event.describe()


def test_exactly_one_audit_event_per_divergent_query(broken_engine):
    outcomes = [
        broken_engine.search(QUERY, scheme="sumbest", options=OPTIONS)
        for _ in range(3)
    ]
    events = [o.audit for o in outcomes]
    assert all(e is not None and not e.ok for e in events)
    # One event per search — divergences are per-query, not accumulated.
    assert len({id(e) for e in events}) == 3


def test_strict_mode_raises_with_the_event(monkeypatch):
    monkeypatch.setattr(repro.api, "Optimizer", GateDroppingOptimizer)
    eng = SearchEngine(
        make_tiny_collection(),
        audit=AuditConfig(rate=1.0, mode="strict"),
    )
    with pytest.raises(ScoreConsistencyError) as exc_info:
        eng.search(QUERY, scheme="sumbest", options=OPTIONS)
    event = exc_info.value.event
    assert event is not None
    assert event.suspect_rules == ("alternate-elimination",)


def test_divergence_counted_per_suspect_rule(monkeypatch):
    from repro.graft.optimizer import Optimizer as RealOptimizer
    from repro.mcalc.parser import parse_query
    from repro.obs.audit import shadow_audit
    from repro.obs.metrics import audit_counters, audit_divergences
    from repro.sa.registry import get_scheme

    collection = make_tiny_collection()
    from repro.index.builder import build_index

    index = build_index(collection)
    scheme = get_scheme("sumbest")
    query = parse_query(QUERY, collection.analyzer)
    broken = GateDroppingOptimizer(scheme, index, OPTIONS).optimize(query)

    from repro.exec.engine import execute, make_runtime

    ranked = execute(broken.plan, make_runtime(index, scheme, broken.info))
    registry = MetricsRegistry()
    event = shadow_audit(
        index, scheme, query, ranked,
        rewrite_log=broken.rewrites, applied=broken.applied,
        registry=registry,
    )
    assert not event.ok
    assert audit_counters(registry).labels(
        scheme="sumbest", result="divergence"
    ).value == 1
    assert audit_divergences(registry).labels(
        rule="alternate-elimination"
    ).value == 1
    # Sanity: the honest optimizer on the same query passes its audit.
    honest = RealOptimizer(scheme, index, OPTIONS).optimize(query)
    ranked_ok = execute(honest.plan, make_runtime(index, scheme, honest.info))
    ok_event = shadow_audit(
        index, scheme, query, ranked_ok,
        rewrite_log=honest.rewrites, applied=honest.applied,
        registry=registry,
    )
    assert ok_event.ok
