"""The score-consistency gate CI runs: audit everything, strictly.

``audit_rate=1.0, audit_mode="strict"`` across every registered scheme
and every tiny-suite query: a single divergence between the optimized
plan and the canonical plan (or, here, the brute-force MCalc oracle)
raises and fails the build.  This is the runtime restatement of the
paper's Definition 1 over the whole rewrite pipeline — the acceptance
criterion for the auditor is that this module finds *zero* divergences
on a correct optimizer.
"""

from __future__ import annotations

import pytest

from repro.api import SearchEngine
from repro.obs.audit import AuditConfig
from repro.sa.registry import available_schemes

from tests.conftest import TINY_QUERIES, make_tiny_collection

STRICT = AuditConfig(rate=1.0, mode="strict", oracle_max_docs=100)


@pytest.fixture(scope="module")
def strict_engine():
    return SearchEngine(make_tiny_collection(), audit=STRICT)


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
@pytest.mark.parametrize("text", TINY_QUERIES)
def test_optimized_plans_are_score_consistent(strict_engine, scheme_name, text):
    outcome = strict_engine.search(text, scheme=scheme_name)
    assert outcome.audit is not None
    assert outcome.audit.ok
    assert outcome.audit.reference == "canonical+oracle"
    assert outcome.audit.checked >= len(outcome.results)


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
def test_top_k_truncation_is_score_consistent(strict_engine, scheme_name):
    outcome = strict_engine.search(
        "quick (fox | dog)", scheme=scheme_name, top_k=2
    )
    assert outcome.audit is not None and outcome.audit.ok


def test_rank_join_path_is_score_consistent(strict_engine):
    outcome = strict_engine.search(
        "quick fox", scheme="anysum", top_k=3, use_rank_join=True
    )
    assert outcome.applied_optimizations == ["rank-join-topk"]
    assert outcome.audit is not None and outcome.audit.ok


def test_unoptimized_plan_trivially_passes(strict_engine):
    outcome = strict_engine.search("quick fox", optimize=False)
    assert outcome.audit is not None and outcome.audit.ok
