"""Unified span export: deterministic ids, tree structure, the schema.

``build_trace`` joins the phase timeline, the profiled operator tree,
and per-shard timings into one OTLP-shaped payload; these tests pin the
join.  The payload shape itself is pinned by the checked-in
``tests/obs/span_schema.json`` (the CI contract), and the semantic
invariants a schema cannot express — parent ids resolve, exactly one
root, one trace id — by ``verify_trace``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import SchemaError, validate
from repro.obs.spans import (
    SpanExporter,
    SpanFileWriter,
    SpanRing,
    build_trace,
    span_id_for,
    trace_id_for,
    verify_trace,
)
from repro.obs.telemetry import RequestTelemetry, TelemetryHub

SCHEMA = json.loads(
    (pathlib.Path(__file__).parent / "span_schema.json").read_text()
)


def finished_rt(request_id: str = "req-0001", status: int = 200,
                shards: int = 0) -> RequestTelemetry:
    rt = RequestTelemetry(request_id=request_id, route="/search",
                          query="a AND b", scheme="bm25")
    with rt.span("parse"):
        pass
    with rt.span("execute"):
        time.sleep(0.002)
    with rt.span("merge"):
        pass
    for i in range(shards):
        rt.add_shard(i, 0.5, rows=3, tripped=False)
    with rt.span("serialize"):
        pass
    rt.finish(status)
    return rt


def flat_spans(payload: dict) -> list[dict]:
    return payload["resourceSpans"][0]["scopeSpans"][0]["spans"]


OP_TREE = {
    "label": "and-group", "op": "AndGroup", "calls": 3, "seeks": 1,
    "docs_out": 7, "rows_out": 7, "time_ms": 1.25, "self_time_ms": 0.5,
    "tripped": False,
    "children": [
        {"label": "term:a", "op": "TermScan", "calls": 3, "seeks": 1,
         "docs_out": 9, "rows_out": 9, "time_ms": 0.4,
         "self_time_ms": 0.4, "tripped": False, "children": []},
        {"label": "term:b", "op": "TermScan", "calls": 3, "seeks": 1,
         "docs_out": 8, "rows_out": 8, "time_ms": 0.35,
         "self_time_ms": 0.35, "tripped": False, "children": []},
    ],
}


# -- identity ---------------------------------------------------------------


def test_ids_are_derived_and_deterministic():
    assert trace_id_for("abc") == trace_id_for("abc")
    assert len(trace_id_for("abc")) == 32
    assert trace_id_for("abc") != trace_id_for("abd")
    assert span_id_for("abc", "request") == span_id_for("abc", "request")
    assert len(span_id_for("abc", "request")) == 16
    assert span_id_for("abc", "request") != span_id_for("abc", "request/x")
    int(trace_id_for("abc"), 16)  # valid hex
    int(span_id_for("abc", "request"), 16)


def test_same_request_id_exports_the_same_ids():
    p1 = build_trace(finished_rt("stable-id"))
    p2 = build_trace(finished_rt("stable-id"))
    assert [s["spanId"] for s in flat_spans(p1)] == \
        [s["spanId"] for s in flat_spans(p2)]


# -- tree structure ---------------------------------------------------------


def test_phase_spans_hang_off_the_server_root():
    rt = finished_rt()
    payload = build_trace(rt)
    spans = verify_trace(payload)
    validate(payload, SCHEMA)
    root = [s for s in spans if not s["parentSpanId"]][0]
    assert root["name"] == "/search"
    assert root["kind"] == 2  # SPAN_KIND_SERVER
    phases = [s for s in spans if s["parentSpanId"] == root["spanId"]]
    assert [s["name"] for s in phases] == [
        "parse", "execute", "merge", "serialize"
    ]
    assert all(s["kind"] == 1 for s in phases)
    # The root window covers the request wall time.
    dur_ms = (int(root["endTimeUnixNano"])
              - int(root["startTimeUnixNano"])) / 1e6
    assert dur_ms == pytest.approx(rt.wall_ms, rel=0.01)


def test_phase_offsets_follow_the_monotonic_clock():
    rt = finished_rt()
    spans = verify_trace(build_trace(rt))
    by_name = {s["name"]: s for s in spans}
    # serialize started after execute ended (sequential phases).
    assert int(by_name["serialize"]["startTimeUnixNano"]) >= \
        int(by_name["execute"]["endTimeUnixNano"])
    root = by_name["/search"]
    for name in ("parse", "execute", "merge", "serialize"):
        assert int(by_name[name]["startTimeUnixNano"]) >= \
            int(root["startTimeUnixNano"])
        assert int(by_name[name]["endTimeUnixNano"]) <= \
            int(root["endTimeUnixNano"]) + 1_000_000  # 1ms rounding slack


def test_operator_tree_grafts_under_execute():
    rt = finished_rt()
    rt.set_trace(OP_TREE)
    payload = build_trace(rt)
    validate(payload, SCHEMA)
    spans = verify_trace(payload)
    by_name = {s["name"]: s for s in spans}
    execute = by_name["execute"]
    and_group = by_name["and-group"]
    assert and_group["parentSpanId"] == execute["spanId"]
    assert by_name["term:a"]["parentSpanId"] == and_group["spanId"]
    assert by_name["term:b"]["parentSpanId"] == and_group["spanId"]
    # Real durations survive the graft; sibling offsets are sequential.
    dur = (int(and_group["endTimeUnixNano"])
           - int(and_group["startTimeUnixNano"])) / 1e6
    assert dur == pytest.approx(1.25, abs=0.01)
    assert int(by_name["term:b"]["startTimeUnixNano"]) >= \
        int(by_name["term:a"]["startTimeUnixNano"])
    attrs = {a["key"]: a["value"] for a in and_group["attributes"]}
    assert attrs["graft.op"] == {"stringValue": "AndGroup"}
    assert attrs["graft.calls"] == {"intValue": "3"}


def test_shard_spans_sit_under_merge():
    rt = finished_rt(shards=3)
    payload = build_trace(rt)
    validate(payload, SCHEMA)
    spans = verify_trace(payload)
    by_name = {s["name"]: s for s in spans}
    merge = by_name["merge"]
    shard_spans = [s for s in spans if s["name"].startswith("shard-")]
    assert len(shard_spans) == 3
    assert all(s["parentSpanId"] == merge["spanId"] for s in shard_spans)
    attrs = {a["key"]: a["value"] for a in shard_spans[0]["attributes"]}
    assert attrs["graft.shard"] == {"intValue": "0"}
    assert attrs["graft.rows"] == {"intValue": "3"}
    assert attrs["graft.limit_tripped"] == {"boolValue": False}


def test_error_status_marks_the_root_span():
    payload = build_trace(finished_rt(status=503))
    root = [s for s in flat_spans(payload) if not s["parentSpanId"]][0]
    assert root["status"]["code"] == 2  # OTLP STATUS_CODE_ERROR
    attrs = {a["key"]: a["value"] for a in root["attributes"]}
    assert attrs["http.status_code"] == {"intValue": "503"}
    ok_root = [s for s in flat_spans(build_trace(finished_rt()))
               if not s["parentSpanId"]][0]
    assert ok_root["status"]["code"] == 0


def test_trace_without_phases_is_just_the_root():
    rt = RequestTelemetry(request_id="bare", route="/search")
    rt.finish(200)
    payload = build_trace(rt)
    validate(payload, SCHEMA)
    assert len(verify_trace(payload)) == 1


# -- verify_trace violations ------------------------------------------------


def test_verify_rejects_empty_and_broken_trees():
    with pytest.raises(ValueError, match="no spans"):
        verify_trace({"resourceSpans": []})

    payload = build_trace(finished_rt())
    spans = flat_spans(payload)

    broken = json.loads(json.dumps(payload))
    flat_spans(broken)[1]["parentSpanId"] = "feedfacefeedface"
    with pytest.raises(ValueError, match="unknown parent"):
        verify_trace(broken)

    broken = json.loads(json.dumps(payload))
    flat_spans(broken)[1]["spanId"] = spans[0]["spanId"]
    with pytest.raises(ValueError, match="duplicate span ids"):
        verify_trace(broken)

    broken = json.loads(json.dumps(payload))
    flat_spans(broken)[1]["parentSpanId"] = ""
    with pytest.raises(ValueError, match="exactly one root"):
        verify_trace(broken)

    broken = json.loads(json.dumps(payload))
    flat_spans(broken)[1]["traceId"] = "f" * 32
    with pytest.raises(ValueError, match="mixes trace ids"):
        verify_trace(broken)

    broken = json.loads(json.dumps(payload))
    flat_spans(broken)[1]["endTimeUnixNano"] = "0"
    with pytest.raises(ValueError, match="ends before it starts"):
        verify_trace(broken)


def test_schema_rejects_a_drifted_payload():
    payload = build_trace(finished_rt())
    validate(payload, SCHEMA)
    drifted = json.loads(json.dumps(payload))
    del flat_spans(drifted)[0]["traceId"]
    with pytest.raises(SchemaError, match="traceId"):
        validate(drifted, SCHEMA)
    drifted = json.loads(json.dumps(payload))
    flat_spans(drifted)[0]["kind"] = 9
    with pytest.raises(SchemaError):
        validate(drifted, SCHEMA)


# -- retention --------------------------------------------------------------


def test_ring_evicts_oldest_first():
    ring = SpanRing(capacity=3)
    for i in range(5):
        ring.put(f"r{i}", {"n": i})
    assert len(ring) == 3
    assert ring.get("r0") is None
    assert ring.get("r1") is None
    assert ring.get("r4") == {"n": 4}
    assert ring.ids() == ["r2", "r3", "r4"]
    # Re-exporting an id refreshes its position instead of duplicating.
    ring.put("r2", {"n": 22})
    ring.put("r5", {"n": 5})
    assert ring.get("r2") == {"n": 22}
    assert ring.get("r3") is None  # r3 was the oldest, evicted


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        SpanRing(0)


def test_file_writer_rotates_before_write(tmp_path):
    path = tmp_path / "traces.jsonl"
    writer = SpanFileWriter(str(path), max_bytes=200)
    big = {"resourceSpans": [], "pad": "x" * 120}
    writer.append(big)
    writer.append(big)  # would exceed 200 bytes: rotates first
    assert writer.written == 2
    rotated = tmp_path / "traces.jsonl.1"
    assert rotated.exists()
    # Every file holds complete JSON lines — nothing torn mid-record.
    for file in (path, rotated):
        for line in file.read_text().splitlines():
            assert json.loads(line)["pad"] == "x" * 120


# -- the exporter facade ----------------------------------------------------


def test_exporter_retains_persists_and_counts(tmp_path):
    registry = MetricsRegistry()
    path = tmp_path / "traces.jsonl"
    exporter = SpanExporter(ring_capacity=8, path=str(path),
                            registry=registry)
    rt = finished_rt("exp-0001", shards=2)
    payload = exporter.export(rt)
    assert exporter.get("exp-0001") is payload
    assert exporter.get("nope") is None
    on_disk = json.loads(path.read_text().splitlines()[0])
    assert on_disk == payload
    snap = registry.snapshot()
    assert snap["graft_traces_exported_total"]["samples"][0]["value"] == 1.0
    assert snap["graft_spans_exported_total"]["samples"][0]["value"] == \
        len(verify_trace(payload))


def test_hub_feeds_the_exporter_for_search_routes_only():
    exporter = SpanExporter(ring_capacity=8, registry=MetricsRegistry())
    hub = TelemetryHub(exporter=exporter)
    rt = hub.begin(route="/search", query="q", scheme="bm25")
    hub.finish(rt, 200)
    assert exporter.get(rt.request_id) is not None
    other = hub.begin(route="/healthz")
    hub.finish(other, 200)
    assert exporter.get(other.request_id) is None


# -- end to end through the engine ------------------------------------------


def test_profiled_search_grafts_the_real_operator_tree(tmp_path):
    from repro.api import SearchEngine

    with SearchEngine.open(tmp_path / "store") as engine:
        engine.add("the quick brown fox", title="d0")
        engine.add("a quick dog", title="d1")
        exporter = SpanExporter(ring_capacity=8,
                                registry=MetricsRegistry())
        hub = TelemetryHub(exporter=exporter)
        rt = hub.begin(route="/search", query="quick", scheme="bm25")
        token = telemetry.activate(rt)
        try:
            outcome = engine.search("quick", profile=True)
        finally:
            telemetry.deactivate(token)
        hub.finish(rt, 200)
    assert outcome.stats is not None
    payload = exporter.get(rt.request_id)
    validate(payload, SCHEMA)
    spans = verify_trace(payload)
    # The profiler's tree landed under the execute phase span.
    execute = [s for s in spans if s["name"] == "execute"]
    assert execute, [s["name"] for s in spans]
    op_spans = [s for s in spans
                if any(a["key"] == "graft.op" for a in s["attributes"])]
    assert op_spans, "profiled operator tree missing from the trace"
    assert all(s["traceId"] == trace_id_for(rt.request_id)
               for s in spans)
