"""Request telemetry: ids, spans, capture, rolling stats, attribution."""

from __future__ import annotations

import json
import pathlib
import threading

import pytest

from repro.obs import telemetry
from repro.obs.schema import validate
from repro.obs.telemetry import (
    NOOP_SPAN,
    PHASES,
    RequestTelemetry,
    RollingStats,
    SlowRequestCapture,
    TelemetryHub,
    attribute_phases,
    new_request_id,
    percentile,
    render_attribution,
    sanitize_request_id,
)

SCHEMA_PATH = pathlib.Path(__file__).with_name("trace_schema.json")

_CROCKFORD = set("0123456789ABCDEFGHJKMNPQRSTVWXYZ")


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_event(rid: str = "r", wall: float = 10.0, **phase_ms) -> dict:
    return {
        "request_id": rid,
        "route": "/search",
        "query": "q",
        "scheme": "sumbest",
        "status": 200,
        "ts": 0.0,
        "wall_ms": wall,
        "phase_ms": dict(phase_ms),
        "unattributed_ms": max(0.0, wall - sum(phase_ms.values())),
        "shards": [],
        "notes": {},
    }


# -- correlation ids --------------------------------------------------------


def test_request_ids_are_26_char_crockford_and_unique():
    ids = {new_request_id() for _ in range(200)}
    assert len(ids) == 200
    for rid in ids:
        assert len(rid) == 26
        assert set(rid) <= _CROCKFORD


def test_request_ids_sort_by_creation_time():
    early = new_request_id(now_ms=1_000_000)
    late = new_request_id(now_ms=2_000_000)
    assert early < late


@pytest.mark.parametrize("raw", [
    "abc-123", "6ED97A2F2F6C8B3A", "a" * 128, "trace.id/with:punct",
])
def test_sanitize_accepts_reasonable_ids(raw):
    assert sanitize_request_id(raw) == raw


@pytest.mark.parametrize("raw", [
    None, "", "   ", "a" * 129, "has space", 'quo"te', "back\\slash",
    "new\nline", "ctrl\x01char", "non-ascii-é",
])
def test_sanitize_rejects_hostile_ids(raw):
    assert sanitize_request_id(raw) is None


def test_sanitize_strips_surrounding_whitespace():
    assert sanitize_request_id("  rid-1  ") == "rid-1"


# -- spans and the per-request record ---------------------------------------


def test_spans_accumulate_into_phase_ms():
    rt = RequestTelemetry(route="/search", query="q", scheme="s")
    with rt.span("parse"):
        pass
    with rt.span("execute"):
        pass
    with rt.span("execute"):  # same phase twice: additive
        pass
    phases = rt.phases()
    assert set(phases) == {"parse", "execute"}
    assert all(v >= 0.0 for v in phases.values())


def test_add_phase_ms_and_notes_and_shards():
    rt = RequestTelemetry(request_id="rid-1", route="/search")
    rt.add_phase_ms("queue_wait", 5.0)
    rt.add_phase_ms("queue_wait", 2.5)
    rt.note("plan_cached", True)
    rt.add_shard(0, 1.25, rows=3, tripped=False)
    event = rt.to_wide_event()
    assert event["phase_ms"]["queue_wait"] == 7.5
    assert event["notes"] == {"plan_cached": True}
    assert event["shards"] == [
        {"shard": 0, "wall_ms": 1.25, "rows": 3, "tripped": False}
    ]


def test_finish_freezes_wall_and_status():
    rt = RequestTelemetry()
    wall = rt.finish(200)
    assert wall >= 0.0
    event = rt.to_wide_event()
    assert event["wall_ms"] == round(wall, 3)
    assert event["status"] == 200


def test_unattributed_ms_is_clamped_nonnegative():
    rt = RequestTelemetry()
    rt.add_phase_ms("execute", 10_000.0)  # far exceeds real wall time
    rt.finish(200)
    assert rt.to_wide_event()["unattributed_ms"] == 0.0


def test_wide_event_validates_against_schema():
    schema = json.loads(SCHEMA_PATH.read_text())
    rt = RequestTelemetry(route="/search", query="q", scheme="sumbest")
    with rt.span("parse"):
        pass
    rt.add_shard(1, 0.5, rows=2, tripped=True)
    rt.note("generation", "g3")
    rt.finish(200)
    validate(rt.to_wide_event(), schema["$defs"]["wide_event"], root=schema)


def test_inflight_view_reports_current_phase():
    rt = RequestTelemetry(request_id="rid-2", query="q")
    with rt.span("execute"):
        view = rt.inflight_view()
        assert view["current_phase"] == "execute"
        assert view["request_id"] == "rid-2"
        assert view["age_ms"] >= 0.0
    assert rt.inflight_view()["current_phase"] is None


# -- context propagation and the zero-overhead off path ---------------------


def test_no_context_by_default_and_noop_span_is_shared():
    assert telemetry.current() is None
    # The off path must allocate nothing: identical singleton every call.
    assert telemetry.span("parse") is NOOP_SPAN
    assert telemetry.maybe_span(None, "parse") is NOOP_SPAN
    with telemetry.span("parse"):
        pass  # and it is a usable no-op context manager


def test_activate_deactivate_round_trip():
    rt = RequestTelemetry()
    token = telemetry.activate(rt)
    try:
        assert telemetry.current() is rt
        assert telemetry.maybe_span(rt, "parse") is not NOOP_SPAN
    finally:
        telemetry.deactivate(token)
    assert telemetry.current() is None


def test_bound_rebinds_inside_a_worker_thread():
    """run_in_executor drops contextvars; bound() is the re-bind."""
    rt = RequestTelemetry()
    seen: list = []

    def worker():
        seen.append(telemetry.current())  # fresh thread: no inheritance
        with telemetry.bound(rt):
            seen.append(telemetry.current())
        seen.append(telemetry.current())

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen == [None, rt, None]


def test_bound_none_is_a_noop():
    with telemetry.bound(None) as rt:
        assert rt is None
        assert telemetry.current() is None


# -- slow-request capture ---------------------------------------------------


def test_capture_keeps_the_worst_events():
    cap = SlowRequestCapture(capacity=3)
    for wall in (5.0, 1.0, 3.0, 10.0, 2.0):
        cap.offer(make_event(rid=f"r{wall}", wall=wall))
    walls = [e["wall_ms"] for e in cap.snapshot()]
    assert walls == [10.0, 5.0, 3.0]  # slowest first; 1.0 and 2.0 evicted
    assert cap.offered == 5
    assert len(cap) == 3


def test_capture_prunes_expired_events():
    clock = FakeClock()
    cap = SlowRequestCapture(capacity=8, window_s=60.0, clock=clock)
    cap.offer(make_event(rid="old", wall=100.0))
    clock.now += 120.0
    cap.offer(make_event(rid="new", wall=1.0))
    events = cap.snapshot()
    assert [e["request_id"] for e in events] == ["new"]


def test_capture_min_wall_filter():
    cap = SlowRequestCapture(capacity=4, min_wall_ms=50.0)
    assert not cap.offer(make_event(wall=10.0))
    assert cap.offer(make_event(wall=80.0))
    assert len(cap) == 1


def test_capture_rejects_bad_capacity():
    with pytest.raises(ValueError):
        SlowRequestCapture(capacity=0)


def test_snapshot_n_limits_output():
    cap = SlowRequestCapture(capacity=8)
    for wall in range(6):
        cap.offer(make_event(rid=f"r{wall}", wall=float(wall)))
    assert len(cap.snapshot(n=2)) == 2


# -- rolling stats ----------------------------------------------------------


def test_rolling_stats_classifies_statuses():
    stats = RollingStats()
    for wall, status in [(10.0, 200), (20.0, 200), (1.0, 503),
                         (2.0, 504), (3.0, 400), (4.0, 500)]:
        stats.observe(wall, status)
    summary = stats.summary()
    assert summary["requests"] == 6
    assert summary["ok"] == 2
    assert summary["shed"] == 1
    assert summary["timeout"] == 1
    assert summary["client_error"] == 1
    assert summary["server_error"] == 1
    assert summary["shed_rate"] == pytest.approx(1 / 6, abs=1e-4)
    assert summary["error_rate"] == pytest.approx(2 / 6, abs=1e-4)
    assert summary["latency_ms"]["p50"] == pytest.approx(15.0)


def test_rolling_stats_window_prunes_old_samples():
    clock = FakeClock()
    stats = RollingStats(window_s=30.0, clock=clock)
    stats.observe(10.0, 200)
    clock.now += 60.0
    stats.observe(20.0, 200)
    summary = stats.summary()
    assert summary["requests"] == 1
    assert summary["latency_ms"]["p50"] == pytest.approx(20.0)


def test_rolling_stats_empty_summary():
    summary = RollingStats().summary()
    assert summary["requests"] == 0
    assert summary["latency_ms"]["p50"] is None


# -- hub --------------------------------------------------------------------


def test_hub_lifecycle_and_search_only_capture():
    hub = TelemetryHub()
    rt = hub.begin(route="/search", query="q", scheme="s")
    assert [v["request_id"] for v in hub.inflight()] == [rt.request_id]
    event = hub.finish(rt, 200)
    assert hub.inflight() == []
    assert event["status"] == 200
    assert len(hub.slow) == 1
    # Non-search routes never feed the slow capture or rolling window.
    other = hub.begin(route="/status")
    hub.finish(other, 200)
    assert len(hub.slow) == 1
    summary = hub.status_summary()
    assert summary["requests"] == 1
    assert summary["inflight"] == 0
    assert summary["slow_captured"] == 1


def test_hub_honours_client_request_id():
    hub = TelemetryHub()
    rt = hub.begin(request_id="client-id-1", route="/search")
    assert rt.request_id == "client-id-1"
    hub.finish(rt, 200)
    assert hub.slow.snapshot()[0]["request_id"] == "client-id-1"


# -- percentile + attribution ----------------------------------------------


def test_percentile_interpolates():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == pytest.approx(4.0)


def test_attribute_phases_shares_sum_to_one():
    events = [
        make_event(rid=f"r{i}", wall=10.0 + i,
                   execute=6.0 + i, parse=2.0, merge=1.0)
        for i in range(10)
    ]
    report = attribute_phases(events, tail_q=0.9)
    assert report["events"] == 10
    total_share = sum(row["share"] for row in report["attribution"])
    assert total_share == pytest.approx(1.0, abs=0.01)
    # Execute dominates the tail, so it leads the attribution.
    assert report["attribution"][0]["phase"] == "execute"
    # Phase listing follows pipeline order, not alphabetical.
    assert list(report["phases"]) == ["parse", "execute", "merge"]
    for name in report["phases"]:
        assert name in PHASES


def test_attribute_phases_reports_unattributed_remainder():
    events = [make_event(wall=100.0, execute=40.0)]
    report = attribute_phases(events)
    rows = {row["phase"]: row for row in report["attribution"]}
    assert rows["(unattributed)"]["share"] == pytest.approx(0.6, abs=0.01)


def test_attribute_phases_empty_and_render():
    assert attribute_phases([])["events"] == 0
    assert render_attribution(attribute_phases([])) == "no captured events"
    events = [make_event(wall=10.0, execute=9.0, parse=1.0)]
    text = render_attribution(attribute_phases(events))
    assert "execute" in text and "parse" in text
    assert "p99" in text
