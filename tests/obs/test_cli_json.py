"""The ``--json`` CLI contract: exactly one JSON object on stdout,
warnings on stderr, across search/explain/verify/metrics."""

import json

import pytest

from repro.cli import main

DOCS = {
    "first": "alpha beta alpha gamma",
    "second": "beta gamma delta",
    "third": "alpha gamma epsilon beta alpha",
    "fourth": "alpha beta beta",
}


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli_json")
    docs = base / "docs"
    docs.mkdir()
    for name, text in DOCS.items():
        (docs / f"{name}.txt").write_text(text)
    idx = base / "idx"
    assert main(["index", str(docs), str(idx)]) == 0
    return str(idx)


def _run_json(capsys, argv):
    """Run a CLI command and parse stdout as exactly one JSON object."""
    assert main(argv) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)  # whole stream must be one object
    assert isinstance(payload, dict)
    return payload, captured.err


def test_search_json_single_object(index_dir, capsys):
    payload, _ = _run_json(
        capsys, ["search", index_dir, "alpha beta", "--json"]
    )
    assert payload["query"] == "alpha beta"
    assert payload["scheme"] == "sumbest"
    assert payload["results"], "query matches the corpus"
    assert payload["results"][0]["rank"] == 1
    assert payload["limit_hit"] is None
    assert payload["degraded"] is False
    # Without --profile there is no trace and no wall time.
    assert payload["trace"] is None
    assert payload["wall_ms"] is None


def test_search_profile_json_has_trace(index_dir, capsys):
    payload, _ = _run_json(
        capsys, ["search", index_dir, "alpha beta", "--json", "--profile"]
    )
    assert payload["trace"] is not None
    assert payload["trace"]["rows_out"] >= len(payload["results"])
    assert payload["wall_ms"] >= 0
    assert payload["metrics"]["rows_charged"] >= 0


def test_search_audit_json(index_dir, capsys):
    payload, _ = _run_json(
        capsys, ["search", index_dir, "alpha beta", "--json", "--audit"]
    )
    assert payload["audit"] is not None
    assert payload["audit"]["ok"] is True
    assert payload["audit"]["query"] == "alpha beta"
    assert payload["audit"]["checked"] == len(payload["results"])


def test_search_audit_text_mode(index_dir, capsys):
    assert main(["search", index_dir, "alpha beta", "--audit"]) == 0
    out = capsys.readouterr().out
    assert "audit ok" in out


def test_search_audit_skipped_on_degraded(index_dir, capsys):
    payload, err = _run_json(
        capsys,
        ["search", index_dir, "alpha beta", "--json", "--audit",
         "--max-rows", "1", "--on-limit", "partial"],
    )
    assert payload["degraded"] is True
    assert payload["audit"] is None
    assert "audit skipped" in err


def test_search_json_limit_warning_on_stderr(index_dir, capsys):
    payload, err = _run_json(
        capsys,
        ["search", index_dir, "alpha beta", "--json",
         "--max-rows", "1", "--on-limit", "partial"],
    )
    assert payload["degraded"] is True
    assert payload["limit_hit"] == "max_rows"
    assert "limit hit" in err


def test_explain_json(index_dir, capsys):
    payload, _ = _run_json(
        capsys, ["explain", index_dir, "alpha beta", "--json"]
    )
    assert payload["plan"].splitlines()[0]
    assert payload["applied_optimizations"]
    assert payload["rewrite_log"] is None
    assert payload["trace"] is None


def test_explain_json_trace_rules_names_fired_rules(index_dir, capsys):
    payload, _ = _run_json(
        capsys,
        ["explain", index_dir, "alpha beta", "--json",
         "--trace-rules", "--analyze"],
    )
    log = payload["rewrite_log"]
    assert isinstance(log, list)
    fired = {e["rule"] for e in log if e["applied"]}
    assert fired == set(payload["applied_optimizations"])
    for event in log:
        if event["applied"]:
            assert event["cost_before"] is not None
            assert event["cost_after"] is not None
    assert payload["trace"] is not None


def test_verify_json(index_dir, capsys):
    payload, _ = _run_json(capsys, ["verify", index_dir, "--json"])
    assert payload["ok"] is True
    assert payload["format"] in ("store", "legacy-v1")


def test_metrics_json_and_prometheus(index_dir, capsys):
    payload, _ = _run_json(capsys, ["metrics"])
    assert isinstance(payload, dict)
    assert main(["metrics", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    # Indexing above fsynced store files through the process registry.
    assert "# TYPE" in out
