"""The score-consistency gate, pointed at the *parallel* execution path.

Same strict auditor as ``test_audit_gate.py`` — every scheme, every
tiny-suite query, zero tolerated divergences against the canonical plan
and the MCalc oracle — but the engine executes through
:func:`repro.exec.parallel.execute_sharded` (3 shards).  The auditor's
reference runs serially, so any shard-slicing or merge defect that
perturbs a single score or rank fails this gate, not just an equality
test we wrote ourselves.
"""

from __future__ import annotations

import pytest

from repro.api import SearchEngine
from repro.obs.audit import AuditConfig
from repro.sa.registry import available_schemes

from tests.conftest import TINY_QUERIES, make_tiny_collection

STRICT = AuditConfig(rate=1.0, mode="strict", oracle_max_docs=100)


@pytest.fixture(scope="module")
def sharded_engine():
    return SearchEngine(make_tiny_collection(), audit=STRICT, shards=3)


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
@pytest.mark.parametrize("text", TINY_QUERIES)
def test_parallel_plans_are_score_consistent(
    sharded_engine, scheme_name, text
):
    outcome = sharded_engine.search(text, scheme=scheme_name)
    assert outcome.shard_count == 3
    assert outcome.audit is not None
    assert outcome.audit.ok
    assert outcome.audit.reference == "canonical+oracle"
    assert outcome.audit.checked >= len(outcome.results)


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
def test_parallel_top_k_truncation_is_score_consistent(
    sharded_engine, scheme_name
):
    outcome = sharded_engine.search(
        "quick (fox | dog)", scheme=scheme_name, top_k=2
    )
    assert outcome.shard_count == 3
    assert outcome.audit is not None and outcome.audit.ok


def test_shards_env_var_drives_engine(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "2")
    engine = SearchEngine(make_tiny_collection(), audit=STRICT)
    outcome = engine.search("quick fox")
    assert engine.shards == 2
    assert outcome.shard_count == 2
    assert outcome.audit is not None and outcome.audit.ok
