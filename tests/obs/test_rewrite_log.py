"""Optimizer rule tracing: the rewrite log must name every fired rule
with before/after cost estimates, and explain every rule that did not
fire (validity-gated, disabled, or matched nothing)."""

import pytest

from repro.api import SearchEngine
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.graft.validity import requirement_text
from repro.obs.rewrite import RewriteEvent, render_rewrite_log
from repro.sa.registry import available_schemes, get_scheme

DOCS = [
    "alpha beta alpha gamma",
    "beta gamma delta",
    "alpha gamma epsilon beta alpha",
    "delta epsilon",
    "alpha beta beta",
]


@pytest.fixture(scope="module")
def engine():
    eng = SearchEngine()
    eng.add_many(DOCS)
    return eng


def optimize(engine, scheme_name, options=None, index="default"):
    idx = engine.index if index == "default" else index
    return Optimizer(get_scheme(scheme_name), idx, options).optimize(
        engine.parse("alpha beta")
    )


@pytest.mark.parametrize("scheme_name", ["sumbest", "anysum"])
def test_every_fired_rule_logged_with_costs(engine, scheme_name):
    result = optimize(engine, scheme_name)
    fired = {e.rule for e in result.rewrites if e.applied}
    assert fired == set(result.applied)
    for event in result.rewrites:
        if event.applied:
            assert event.cost_before is not None, event.rule
            assert event.cost_after is not None, event.rule
            assert event.summary, event.rule


#: The algebraic rewrite pipeline (rank-join / rank-union / zigzag-join
#: are top-k execution strategies chosen outside this pipeline).
PIPELINE_RULES = {
    "selection-pushing",
    "join-reordering",
    "eager-counting",
    "pre-counting",
    "forward-scan-join",
    "eager-aggregation",
    "sort-elimination",
    "alternate-elimination",
}


def test_rewrite_log_covers_every_scheme(engine):
    """Every scheme's log considers every pipeline rule at least once."""
    for scheme_name in available_schemes():
        result = optimize(engine, scheme_name)
        considered = {e.rule for e in result.rewrites}
        assert considered >= PIPELINE_RULES, scheme_name


def test_gated_rule_cites_table1_requirement(engine):
    result = optimize(engine, "bestsum-mindist")
    by_rule = {e.rule: e for e in result.rewrites}
    event = by_rule["pre-counting"]
    assert not event.allowed and not event.applied
    assert event.verdict == requirement_text("pre-counting")
    assert "requires" in event.verdict


def test_disabled_rule_logged_as_disabled(engine):
    options = OptimizerOptions(pre_counting=False)
    result = optimize(engine, "sumbest", options)
    by_rule = {e.rule: e for e in result.rewrites}
    assert by_rule["pre-counting"].verdict == "disabled"
    assert not by_rule["pre-counting"].applied
    assert "pre-counting" not in result.applied


def test_no_index_costs_are_none(engine):
    result = optimize(engine, "sumbest", index=None)
    by_rule = {e.rule: e for e in result.rewrites}
    assert all(e.cost_before is None for e in result.rewrites)
    assert by_rule["join-reordering"].verdict == "no index statistics"
    assert not by_rule["join-reordering"].applied


def test_render_rewrite_log_format(engine):
    result = optimize(engine, "sumbest")
    text = render_rewrite_log(result.rewrites)
    lines = text.splitlines()
    assert len(lines) == len(result.rewrites)
    for event, line in zip(result.rewrites, lines):
        assert line.startswith(event.rule)
        if event.applied:
            assert "[fired]" in line
            assert "cost" in line and "->" in line
    assert render_rewrite_log([]) == "(no rewrite rules considered)"


def test_event_to_dict_roundtrip():
    event = RewriteEvent(
        rule="pre-counting", allowed=True, applied=True,
        verdict="allowed", summary="s", cost_before=3.0, cost_after=1.0,
    )
    d = event.to_dict()
    assert d["rule"] == "pre-counting"
    assert d["cost_before"] == 3.0 and d["cost_after"] == 1.0


def test_search_outcome_carries_rewrite_log(engine):
    outcome = engine.search("alpha beta", scheme="sumbest")
    assert outcome.rewrite_log
    assert {e.rule for e in outcome.rewrite_log if e.applied} == set(
        outcome.applied_optimizations
    )


def test_explain_trace_rules_section(engine):
    text = engine.explain("alpha beta", scheme="sumbest", trace_rules=True)
    assert "-- rewrite log" in text
    assert "[fired]" in text
    plain = engine.explain("alpha beta", scheme="sumbest")
    assert "-- rewrite log" not in plain
