"""Structured query log: rotation, sampling, readers, CLI, schema."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api import SearchEngine
from repro.cli import main
from repro.errors import GraftError
from repro.obs.audit import AuditConfig
from repro.obs.qlog import (
    QueryLog,
    log_stats,
    read_log,
    tail_records,
)
from repro.obs.schema import validate

from tests.conftest import make_tiny_collection

SCHEMA_PATH = pathlib.Path(__file__).with_name("trace_schema.json")


def make_record(i: int, **overrides) -> dict:
    record = {
        "schema": 1, "ts": float(i), "query": f"query {i}",
        "scheme": "sumbest", "status": "ok", "wall_ms": 1.0,
        "slow": False, "sampled": True, "top_k": None, "limit_hit": None,
        "applied_optimizations": [], "results": 0, "audit_ok": None,
        "trace": None,
    }
    record.update(overrides)
    return record


# -- construction ----------------------------------------------------------


@pytest.mark.parametrize("rate", [-0.5, 1.5])
def test_rejects_bad_sample_rate(tmp_path, rate):
    with pytest.raises(GraftError):
        QueryLog(tmp_path / "q.jsonl", sample_rate=rate)


def test_rejects_tiny_max_bytes(tmp_path):
    with pytest.raises(GraftError):
        QueryLog(tmp_path / "q.jsonl", max_bytes=10)


# -- rotation --------------------------------------------------------------


def test_rotation_never_truncates_a_record(tmp_path):
    """Every line in every file (active + rotated) parses whole: rotation
    happens before the write, so no record is ever split across files."""
    ql = QueryLog(tmp_path / "q.jsonl", max_bytes=1024, max_rotations=3)
    for i in range(60):
        ql.append(make_record(i, query=f"query {i} " + "x" * 100))
    files = ql.files()
    assert len(files) == 4  # 3 rotated + active
    seen = []
    for file in files:
        for line in file.read_text().splitlines():
            record = json.loads(line)  # raises if a record was torn
            seen.append(record["ts"])
        assert file.stat().st_size <= 1024 + 300  # one oversized line max
    # Records survive in order within the retained window, no duplicates.
    assert seen == sorted(seen)
    assert len(seen) == len(set(seen))
    assert seen[-1] == 59.0


def test_rotation_drops_oldest_beyond_max(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", max_bytes=1024, max_rotations=2)
    for i in range(100):
        ql.append(make_record(i, query="y" * 150))
    assert len(ql.files()) == 3  # .2, .1, active — .3+ never exists
    assert not (tmp_path / "q.jsonl.3").exists()


def test_oversized_single_record_lands_whole(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", max_bytes=1024)
    ql.append(make_record(0, query="z" * 5000))
    [record] = read_log(tmp_path / "q.jsonl")
    assert record["query"] == "z" * 5000


# -- sampling and the slow-query override ----------------------------------


def test_sample_rate_zero_still_logs_slow_queries(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", sample_rate=0.0, slow_ms=100.0)
    assert not ql.log_query("fast", "sumbest", "ok", 5.0)
    assert ql.log_query("slow", "sumbest", "ok", 250.0)
    records = read_log(tmp_path / "q.jsonl")
    assert [r["query"] for r in records] == ["slow"]
    assert records[0]["slow"] is True
    assert records[0]["sampled"] is False  # forced, not sampled


def test_sample_rate_zero_still_logs_failures(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", sample_rate=0.0)
    assert ql.log_query("boom", "sumbest", "error", 1.0)
    assert ql.log_query("degraded", "sumbest", "degraded", 1.0)
    assert not ql.log_query("fine", "sumbest", "ok", 1.0)
    assert [r["status"] for r in read_log(tmp_path / "q.jsonl")] == [
        "error", "degraded",
    ]


def test_half_rate_keeps_exactly_every_other(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", sample_rate=0.5)
    written = [
        ql.log_query(f"q{i}", "sumbest", "ok", 1.0) for i in range(6)
    ]
    assert written == [False, True, False, True, False, True]


def test_trace_embedded_only_for_slow_or_failed(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", slow_ms=100.0)
    eng = SearchEngine(make_tiny_collection(), qlog=ql)
    eng.search("quick fox", profile=True)  # fast, ok -> no trace
    records = read_log(tmp_path / "q.jsonl")
    assert records[0]["trace"] is None
    slow_ql = QueryLog(tmp_path / "q2.jsonl", slow_ms=0.0)
    eng2 = SearchEngine(make_tiny_collection(), qlog=slow_ql)
    eng2.search("quick fox", profile=True)  # everything is "slow"
    [slow_rec] = read_log(tmp_path / "q2.jsonl")
    assert slow_rec["slow"] is True
    assert slow_rec["trace"] is not None
    assert slow_rec["trace"]["op"]


# -- engine integration and schema -----------------------------------------


def test_engine_records_validate_against_schema(tmp_path):
    schema = json.loads(SCHEMA_PATH.read_text())
    ql = QueryLog(tmp_path / "q.jsonl", slow_ms=0.0)
    eng = SearchEngine(
        make_tiny_collection(),
        audit=AuditConfig(rate=1.0),
        qlog=ql,
    )
    from repro.exec.limits import QueryLimits

    eng.search("quick fox", profile=True)
    eng.search("quick (fox | dog)", top_k=3)
    with pytest.raises(GraftError):
        eng.search("quick (fox | dog)", limits=QueryLimits(max_rows=1))
    records = read_log(tmp_path / "q.jsonl")
    assert len(records) == 3
    for record in records:
        validate(record, schema["$defs"]["qlog_record"], root=schema)
    assert records[0]["audit_ok"] is True
    assert records[1]["top_k"] == 3
    assert records[2]["status"] == "error"
    assert records[2]["results"] == 0


# -- readers ---------------------------------------------------------------


def test_read_log_missing_file_raises(tmp_path):
    with pytest.raises(GraftError):
        read_log(tmp_path / "absent.jsonl")


def test_malformed_line_is_named(tmp_path):
    path = tmp_path / "q.jsonl"
    path.write_text(json.dumps(make_record(0)) + "\n{torn")
    with pytest.raises(GraftError, match="q.jsonl:2"):
        read_log(path)


def test_tail_returns_last_n(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl")
    for i in range(10):
        ql.append(make_record(i))
    tail = tail_records(tmp_path / "q.jsonl", n=3)
    assert [r["ts"] for r in tail] == [7.0, 8.0, 9.0]


def test_stats_aggregates_across_rotated_files(tmp_path):
    ql = QueryLog(tmp_path / "q.jsonl", max_bytes=2048, max_rotations=5)
    for i in range(30):
        ql.append(make_record(
            i,
            status="error" if i % 10 == 0 else "ok",
            scheme="anysum" if i % 2 else "sumbest",
            wall_ms=float(i),
        ))
    assert len(ql.files()) > 1  # rotation actually happened
    stats = log_stats(tmp_path / "q.jsonl")
    assert stats["records"] == 30
    assert stats["by_status"]["error"] == 3
    assert stats["by_scheme"] == {"anysum": 15, "sumbest": 15}
    assert stats["wall_ms"]["max"] == 29.0
    active_only = log_stats(tmp_path / "q.jsonl", include_rotated=False)
    assert active_only["records"] < 30


# -- CLI -------------------------------------------------------------------


def test_cli_tail_and_stats(tmp_path, capsys):
    ql = QueryLog(tmp_path / "q.jsonl", slow_ms=100.0)
    ql.log_query("fast one", "sumbest", "ok", 2.0)
    ql.log_query("slow one", "anysum", "ok", 300.0)
    path = str(tmp_path / "q.jsonl")

    assert main(["qlog", "tail", path, "-n", "1"]) == 0
    out = capsys.readouterr().out
    assert "slow one" in out and "fast one" not in out
    assert "[slow]" in out

    assert main(["qlog", "stats", path]) == 0
    out = capsys.readouterr().out
    assert "2 records" in out

    assert main(["qlog", "tail", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["records"]) == 2

    assert main(["qlog", "stats", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["records"] == 2
    assert payload["slow"] == 1
