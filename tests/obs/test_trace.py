"""Trace-tree correctness: the recorded counters must agree with what
execution actually produced, operator by operator."""

import json

import pytest

from repro.api import SearchEngine
from repro.exec.engine import execute, make_runtime
from repro.exec.limits import QueryLimits
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.obs.analyze import (
    annotate_estimates,
    misestimate_ratio,
    render_analyze,
    trace_totals,
)
from repro.obs.trace import Tracer
from repro.sa.registry import get_scheme

DOCS = [
    "alpha beta alpha gamma",
    "beta gamma delta",
    "alpha gamma epsilon beta alpha",
    "delta epsilon",
    "alpha beta beta",
]


@pytest.fixture(scope="module")
def engine():
    eng = SearchEngine()
    eng.add_many(DOCS)
    return eng


def run_traced(engine, text, scheme_name="sumbest", options=None, limits=None):
    scheme = get_scheme(scheme_name)
    query = engine.parse(text)
    result = Optimizer(scheme, engine.index, options).optimize(query)
    tracer = Tracer()
    runtime = make_runtime(
        engine.index, scheme, result.info, limits=limits, tracer=tracer
    )
    pairs = execute(result.plan, runtime)
    return pairs, tracer, result


def test_trace_mirrors_plan_shape(engine):
    _, tracer, result = run_traced(engine, "alpha beta")
    plan_labels = [node.label() for node in result.plan.walk()]
    trace_labels = [node.label for node in tracer.root.walk()]
    assert trace_labels == plan_labels
    assert all(node.op_name for node in tracer.root.walk())


def test_root_rows_equal_results(engine):
    for text in ("alpha", "alpha beta", "alpha or delta", "alpha and not beta"):
        pairs, tracer, _ = run_traced(engine, text)
        root = tracer.root
        assert root.stats.rows_out == len(pairs)
        assert root.stats.docs_out == len({doc for doc, _ in pairs})


def test_untraced_and_traced_results_identical(engine):
    out_plain = engine.search("alpha beta", scheme="sumbest")
    out_traced = engine.search("alpha beta", scheme="sumbest", profile=True)
    assert [(r.doc_id, r.score) for r in out_plain] == [
        (r.doc_id, r.score) for r in out_traced
    ]
    assert out_plain.stats is None
    assert out_traced.stats is not None
    assert out_traced.wall_ms is not None and out_traced.wall_ms >= 0


def test_parent_rows_in_consistency(engine):
    """Every interior node's input equals what its children emitted."""
    _, tracer, _ = run_traced(engine, "alpha or beta")
    for node in tracer.root.walk():
        if node.children:
            assert node.rows_in == sum(c.stats.rows_out for c in node.children)


def test_times_are_monotone_and_nonnegative(engine):
    _, tracer, _ = run_traced(engine, "alpha beta gamma")
    for node in tracer.root.walk():
        assert node.stats.time_ns >= 0
        assert node.self_time_ns >= 0
    assert tracer.total_ns > 0


def test_trace_totals_consistent_with_analyze(engine):
    pairs, tracer, _ = run_traced(engine, "alpha beta")
    annotate_estimates(tracer.root, engine.index)
    totals = trace_totals(tracer.root)
    assert totals["rows_out_root"] == len(pairs)
    assert totals["operators"] == sum(1 for _ in tracer.root.walk())
    assert not totals["tripped"]
    text = render_analyze(tracer.root, total_ns=tracer.total_ns)
    lines = text.splitlines()
    # Width-stable layout: every operator line's estimate column aligns.
    positions = {line.index("[est") for line in lines if "[est" in line}
    assert len(positions) == 1
    assert lines[-1].startswith("total: ")
    assert f"rows={len(pairs)}" in lines[0]


def test_estimates_annotated_and_ratio_defined(engine):
    _, tracer, _ = run_traced(engine, "alpha beta")
    annotate_estimates(tracer.root, engine.index)
    annotated = [n for n in tracer.root.walk() if n.estimate is not None]
    assert annotated, "cost model priced no node"
    for node in annotated:
        assert set(node.estimate) == {"docs", "rows", "cost"}
        ratio = misestimate_ratio(node)
        assert ratio is None or ratio >= 0


def test_trace_serializes_to_json(engine):
    _, tracer, _ = run_traced(engine, "alpha beta")
    annotate_estimates(tracer.root, engine.index)
    payload = tracer.root.to_dict()
    decoded = json.loads(json.dumps(payload))
    assert decoded["label"] == tracer.root.label
    assert decoded["rows_out"] == tracer.root.stats.rows_out
    assert isinstance(decoded["children"], list)


def test_tripped_operator_flagged(engine):
    limits = QueryLimits(max_rows=1, on_limit="partial")
    _, tracer, _ = run_traced(engine, "alpha beta", limits=limits)
    assert any(n.stats.tripped for n in tracer.root.walk())
    totals = trace_totals(tracer.root)
    assert totals["tripped"]


def test_canonical_plan_traces_every_operator(engine):
    """The unoptimized plan has the deepest tree; tracing must cover it."""
    scheme = get_scheme("sumbest")
    query = engine.parse("alpha beta")
    result = Optimizer(scheme, engine.index).canonical(query)
    tracer = Tracer()
    runtime = make_runtime(engine.index, scheme, result.info, tracer=tracer)
    pairs = execute(result.plan, runtime)
    assert tracer.root.stats.rows_out == len(pairs)
    assert [n.label for n in tracer.root.walk()] == [
        n.label() for n in result.plan.walk()
    ]


def test_fused_scan_traces_as_single_node(engine):
    """The eager-aggregation leaf fusion compiles three logical nodes into
    one physical scan; the trace keeps the logical shape."""
    scheme = get_scheme("sumbest")
    query = engine.parse("alpha")
    result = Optimizer(scheme, engine.index).optimize(query)
    tracer = Tracer()
    runtime = make_runtime(engine.index, scheme, result.info, tracer=tracer)
    execute(result.plan, runtime)
    fused = [
        n for n in tracer.root.walk() if n.op_name == "ScoredPreCountScanOp"
    ]
    if fused:  # fusion applies when the plan bottoms out in GroupScore(ScoreInit(CA))
        for node in fused:
            assert not node.children or all(
                c.stats.calls == 0 for c in node.children
            )
