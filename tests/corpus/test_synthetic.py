"""Synthetic corpus generator tests."""

import pytest

from repro.corpus.synthetic import (
    SyntheticCorpusConfig,
    Theme,
    _topic,
    generate_corpus,
    paper_themes,
)


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(SyntheticCorpusConfig(num_docs=300, seed=7))


def test_deterministic_given_seed():
    a = generate_corpus(SyntheticCorpusConfig(num_docs=50, seed=42))
    b = generate_corpus(SyntheticCorpusConfig(num_docs=50, seed=42))
    assert [d.tokens for d in a] == [d.tokens for d in b]


def test_different_seeds_differ():
    a = generate_corpus(SyntheticCorpusConfig(num_docs=50, seed=1))
    b = generate_corpus(SyntheticCorpusConfig(num_docs=50, seed=2))
    assert [d.tokens for d in a] != [d.tokens for d in b]


def test_requested_document_count(small_corpus):
    assert len(small_corpus) == 300


def test_planted_phrases_are_contiguous(small_corpus):
    """A planted 'san francisco' must appear as adjacent tokens."""
    found = 0
    for doc in small_corpus:
        for pos in doc.positions_of("francisco"):
            if pos > 0 and doc.tokens[pos - 1] == "san":
                found += 1
    assert found > 0


def test_common_words_more_frequent_than_rare(small_corpus):
    df = {
        term: sum(1 for d in small_corpus if d.term_frequency(term))
        for term in ("free", "foss")
    }
    assert df["free"] > 10 * max(1, df["foss"])


def test_theme_correlation_boosts_cooccurrence(small_corpus):
    """Docs containing 'dinosaur' should disproportionately contain
    'species' (the theme mechanism)."""
    dino = [d for d in small_corpus if d.term_frequency("dinosaur")]
    other = [d for d in small_corpus if not d.term_frequency("dinosaur")]
    assert dino, "theme planting produced no dinosaur documents"
    rate_dino = sum(1 for d in dino if d.term_frequency("species")) / len(dino)
    rate_other = sum(1 for d in other if d.term_frequency("species")) / len(other)
    assert rate_dino > rate_other


def test_theme_weights_must_not_exceed_one():
    heavy = Theme("x", 1.5, (_topic("a", 1.0),))
    with pytest.raises(ValueError):
        generate_corpus(SyntheticCorpusConfig(num_docs=5, themes=[heavy]))


def test_paper_themes_cover_all_query_keywords():
    words = set()
    for theme in paper_themes():
        for topic in theme.topics:
            words.update(topic.tokens)
    for needed in (
        "san", "francisco", "fault", "line", "dinosaur", "species", "list",
        "image", "picture", "drawing", "illustration", "orange", "county",
        "convention", "center", "orlando", "windows", "emulator", "foss",
        "free", "software", "wireless", "internet", "service", "arizona",
        "fishing", "hunting", "rules", "regulations", "rick", "warren",
        "obama", "inauguration", "controversy", "invocation",
    ):
        assert needed in words, needed
