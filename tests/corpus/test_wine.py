"""The d_w fixture must reproduce Figure 1 exactly."""

from repro.corpus.wine import (
    WINE_COLLECTION_SIZE,
    WINE_DOC_LENGTH,
    WINE_OFFSETS,
    wine_collection,
    wine_document,
    wine_stats_overrides,
)


def test_document_length_is_207():
    assert wine_document().length == WINE_DOC_LENGTH == 207


def test_offsets_match_figure_1():
    doc = wine_document()
    assert doc.positions_of("emulator") == [64]
    assert doc.positions_of("free") == [3]
    assert doc.positions_of("foss") == [179]
    assert doc.positions_of("software") == [4, 32, 180, 189]
    assert doc.positions_of("windows") == [27, 42, 144, 187]


def test_in_document_frequencies_match_figure_1():
    doc = wine_document()
    assert doc.term_frequency("software") == 4
    assert doc.term_frequency("windows") == 4
    assert doc.term_frequency("emulator") == 1


def test_filler_tokens_do_not_collide_with_keywords():
    doc = wine_document()
    for term, offsets in WINE_OFFSETS.items():
        assert doc.positions_of(term) == offsets


def test_stats_overrides_carry_collection_numbers():
    ov = wine_stats_overrides()
    assert ov["collection_size"] == WINE_COLLECTION_SIZE == 4_638_535
    assert ov["document_frequency"]["foss"] == 2044
    assert ov["document_frequency"]["free"] == 332_335


def test_wine_collection_has_one_document():
    col = wine_collection()
    assert len(col) == 1
    assert col[0].length == 207
