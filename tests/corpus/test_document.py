"""Document model tests."""

import pytest

from repro.corpus.document import Document, DocumentBuilder


@pytest.fixture
def doc():
    return Document(3, ("a", "b", "a", "c", "b", "a"), title="t")


def test_length_is_token_count(doc):
    assert doc.length == 6


def test_positions_of_lists_all_offsets_ascending(doc):
    assert doc.positions_of("a") == [0, 2, 5]
    assert doc.positions_of("b") == [1, 4]


def test_positions_of_missing_term_is_empty(doc):
    assert doc.positions_of("zzz") == []


def test_term_frequency_counts_occurrences(doc):
    assert doc.term_frequency("a") == 3
    assert doc.term_frequency("c") == 1
    assert doc.term_frequency("zzz") == 0


def test_snippet_is_window_around_center(doc):
    assert doc.snippet(2, radius=1) == "b a c"


def test_snippet_clips_at_document_edges(doc):
    assert doc.snippet(0, radius=2) == "a b a"
    assert doc.snippet(5, radius=2) == "c b a"


def test_documents_are_immutable(doc):
    with pytest.raises(AttributeError):
        doc.doc_id = 7


def test_builder_accumulates_fragments():
    built = (
        DocumentBuilder(1, title="x")
        .add_tokens(["a", "b"])
        .add_tokens(["c"])
        .build()
    )
    assert built.tokens == ("a", "b", "c")
    assert built.doc_id == 1
    assert built.title == "x"
