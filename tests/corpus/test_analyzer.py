"""Analyzer tests."""

import pytest

from repro.corpus.analyzer import SimpleAnalyzer, WhitespaceAnalyzer


def test_simple_analyzer_lowercases_and_splits():
    assert SimpleAnalyzer().tokens("Hello, World!") == ["hello", "world"]


def test_simple_analyzer_keeps_digits():
    assert SimpleAnalyzer().tokens("win32 api") == ["win32", "api"]


def test_simple_analyzer_drops_short_tokens():
    analyzer = SimpleAnalyzer(min_token_length=2)
    assert analyzer.tokens("a bc d ef") == ["bc", "ef"]


def test_simple_analyzer_rejects_zero_min_length():
    with pytest.raises(ValueError):
        SimpleAnalyzer(min_token_length=0)


def test_single_keyword_analysis():
    assert SimpleAnalyzer().token("Quick") == "quick"


def test_multi_token_keyword_rejected():
    with pytest.raises(ValueError):
        SimpleAnalyzer().token("san francisco")


def test_whitespace_analyzer_preserves_case():
    assert WhitespaceAnalyzer().tokens("Ab cD") == ["Ab", "cD"]


def test_empty_text_analyzes_to_no_tokens():
    assert SimpleAnalyzer().tokens("  ... !! ") == []
