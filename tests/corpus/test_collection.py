"""DocumentCollection tests."""

from repro.corpus.collection import DocumentCollection


def test_ids_are_dense_and_ordered():
    col = DocumentCollection()
    a = col.add_text("one two")
    b = col.add_text("three")
    assert (a.doc_id, b.doc_id) == (0, 1)
    assert [d.doc_id for d in col] == [0, 1]


def test_add_text_uses_analyzer():
    col = DocumentCollection()
    doc = col.add_text("Hello, World!")
    assert doc.tokens == ("hello", "world")


def test_add_tokens_is_verbatim():
    col = DocumentCollection()
    doc = col.add_tokens(["Keep", "Case!"])
    assert doc.tokens == ("Keep", "Case!")


def test_total_tokens_sums_lengths():
    col = DocumentCollection()
    col.add_text("a b c")
    col.add_text("d e")
    assert col.total_tokens == 5


def test_vocabulary_is_distinct_terms():
    col = DocumentCollection()
    col.add_text("a b a")
    col.add_text("b c")
    assert col.vocabulary() == {"a", "b", "c"}


def test_getitem_by_doc_id():
    col = DocumentCollection()
    col.add_text("x")
    col.add_text("y")
    assert col[1].tokens == ("y",)


def test_extend_texts():
    col = DocumentCollection()
    col.extend_texts(["a", "b", "c"])
    assert len(col) == 3
