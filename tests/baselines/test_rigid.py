"""Rigid query decomposition and positional helpers."""

import pytest

from repro.baselines.rigid import (
    best_proximity_slop,
    decompose_rigid,
    min_span,
    phrase_occurs,
)
from repro.bench.workload import PAPER_QUERIES, RIGID_SUPPORTED
from repro.errors import UnsupportedQueryError
from repro.mcalc.parser import parse_query


class TestDecomposition:
    def test_bare_terms(self):
        rigid = decompose_rigid(parse_query("san francisco fault line"))
        assert rigid.terms == ["san", "francisco", "fault", "line"]

    def test_or_group(self):
        rigid = decompose_rigid(parse_query("a (b | c | d)"))
        assert rigid.or_groups == [["b", "c", "d"]]

    def test_phrase(self):
        rigid = decompose_rigid(parse_query('"orange county convention center"'))
        assert rigid.phrases == [["orange", "county", "convention", "center"]]

    def test_proximity_group(self):
        rigid = decompose_rigid(parse_query("(free wireless internet)PROXIMITY[10]"))
        assert rigid.proximities == [(["free", "wireless", "internet"], 10)]

    def test_window_unsupported(self):
        with pytest.raises(UnsupportedQueryError):
            decompose_rigid(parse_query("(a b)WINDOW[50]"))

    def test_nested_disjunction_unsupported(self):
        with pytest.raises(UnsupportedQueryError):
            decompose_rigid(parse_query('a (b | "c d")'))

    def test_negation_unsupported(self):
        with pytest.raises(UnsupportedQueryError):
            decompose_rigid(parse_query("a -b"))

    @pytest.mark.parametrize("name", RIGID_SUPPORTED)
    def test_supported_paper_queries_decompose(self, name):
        decompose_rigid(parse_query(PAPER_QUERIES[name]))

    @pytest.mark.parametrize("name", ("Q8", "Q10"))
    def test_window_paper_queries_rejected(self, name):
        """Section 8: "Lucene and Terrier do not support Q8 or Q10"."""
        with pytest.raises(UnsupportedQueryError):
            decompose_rigid(parse_query(PAPER_QUERIES[name]))

    def test_all_keywords_in_query_order(self):
        rigid = decompose_rigid(parse_query('a (b | c) "d e"'))
        assert rigid.all_keywords() == ["a", "b", "c", "d", "e"]


class TestPositionalHelpers:
    def test_phrase_occurs(self):
        assert phrase_occurs([(3, 9), (4,), (5, 20)])
        assert not phrase_occurs([(3,), (5,)])
        assert not phrase_occurs([(3,), ()])

    def test_min_span_pairs(self):
        assert min_span([(1, 50), (40,)]) == 10
        assert min_span([(1,), (2,), (3,)]) == 2

    def test_min_span_empty_list(self):
        assert min_span([(1,), ()]) is None

    def test_min_span_finds_tight_cluster(self):
        assert min_span([(0, 100), (1, 200), (2, 300)]) == 2

    def test_best_proximity_slop(self):
        # span 4 over 2 terms -> slop 3.
        assert best_proximity_slop([(0,), (4,)], 10) == 3
        # adjacent -> slop 0.
        assert best_proximity_slop([(0,), (1,)], 10) == 0
        # out of range -> None.
        assert best_proximity_slop([(0,), (20,)], 10) is None
