"""Rigid engines vs GRAFT: the Figure-4 correctness cross-check.

GRAFT optimized for Lucene's scheme must return exactly Lucene's ranking,
and GRAFT optimized for Terrier's scheme (AnySum) exactly Terrier's — the
whole point of flexible plan generation is matching the rigid engines'
*semantics* while keeping scoring generic.
"""

import pytest

from repro.baselines import LuceneLikeEngine, TerrierLikeEngine
from repro.bench.workload import RIGID_SUPPORTED, bench_fixture
from repro.errors import UnsupportedQueryError
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme

from tests.conftest import assert_same_ranking


@pytest.fixture(scope="module")
def fx():
    return bench_fixture(num_docs=1200)


def graft_ranking(query, scheme_name, index):
    scheme = get_scheme(scheme_name)
    res = Optimizer(scheme, index).optimize(query)
    return execute(res.plan, make_runtime(index, scheme, res.info))


@pytest.mark.parametrize("name", RIGID_SUPPORTED)
def test_lucene_like_equals_graft_lucene(name, fx):
    q = fx.queries[name]
    want = graft_ranking(q, "lucene", fx.index)
    got = LuceneLikeEngine(fx.index).search(q)
    assert_same_ranking(got, want)


@pytest.mark.parametrize("name", RIGID_SUPPORTED)
def test_terrier_like_equals_graft_anysum(name, fx):
    q = fx.queries[name]
    want = graft_ranking(q, "anysum", fx.index)
    got = TerrierLikeEngine(fx.index).search(q)
    assert_same_ranking(got, want)


@pytest.mark.parametrize("engine_cls", [LuceneLikeEngine, TerrierLikeEngine])
def test_window_queries_rejected(engine_cls, fx):
    for name in ("Q8", "Q10"):
        with pytest.raises(UnsupportedQueryError):
            engine_cls(fx.index).search(fx.queries[name])


@pytest.mark.parametrize("engine_cls", [LuceneLikeEngine, TerrierLikeEngine])
def test_top_k_truncates(engine_cls, fx):
    q = fx.queries["Q4"]
    full = engine_cls(fx.index).search(q)
    top = engine_cls(fx.index).search(q, top_k=3)
    assert top == full[:3]


def test_phrase_must_be_verified_not_just_cooccur(tiny_index):
    """Docs containing both words but not adjacent must be rejected."""
    q = parse_query('"fox quick"')  # reversed: never adjacent in doc 0
    results = LuceneLikeEngine(tiny_index).search(q)
    assert all(doc != 0 for doc, _ in results)


def test_proximity_weighting_prefers_tight_matches(tiny_index):
    """'quick fox' adjacent (doc 4) must outscore looser co-occurrence
    under Lucene's sloppy weighting, relative to BM25-only baselines."""
    q = parse_query("(quick dog)PROXIMITY[8]")
    lucene = dict(LuceneLikeEngine(tiny_index).search(q))
    terrier = dict(TerrierLikeEngine(tiny_index).search(q))
    assert set(lucene) == set(terrier)
    # Lucene discounts sloppy matches: no Lucene score may exceed the
    # undiscounted AnySum-style sum.
    for doc, score in lucene.items():
        assert score <= terrier[doc] + 1e-9


def test_empty_query_result_for_absent_terms(tiny_index):
    q = parse_query("zebra unicorn")
    assert LuceneLikeEngine(tiny_index).search(q) == []
    assert TerrierLikeEngine(tiny_index).search(q) == []
