"""Score-encapsulated legacy framework tests (beyond the motivation demo,
which lives in tests/graft/test_motivation.py)."""

import pytest

from repro.index.builder import build_index
from repro.legacy.encapsulated import EncapsulatedEngine, join_normalized_sj
from repro.mcalc.ast import Pred
from repro.sa.context import IndexScoringContext

from tests.conftest import make_tiny_collection


@pytest.fixture
def engine():
    col = make_tiny_collection()
    idx = build_index(col)
    return EncapsulatedEngine(
        idx,
        IndexScoringContext(idx),
        sj=join_normalized_sj,
        initial=lambda ctx, doc, var, kw: 1.0,
    )


def test_sj_distributes_score_mass():
    # m_L.s / |M_R| + m_R.s / |M_L|
    assert join_normalized_sj(2.0, 3.0, 2, 4) == pytest.approx(2 / 4 + 3 / 2)


def test_sj_zero_cardinality_guard():
    assert join_normalized_sj(2.0, 3.0, 0, 0) == 0.0


def test_atom_produces_one_tuple_per_position(engine):
    tuples = engine.atom("p0", "dog")
    # 'dog' total positions in the tiny collection: 1+1+1+2+3+0+1 = 8? See
    # the index itself for the ground truth.
    assert len(tuples) == engine.index.total_positions("dog")


def test_join_preserves_score_mass_per_document(engine):
    """The SJ design goal: joining neither creates nor destroys score
    mass (before any selection)."""
    left = engine.atom("p0", "quick")
    right = engine.atom("p1", "fox")
    joined = engine.join(left, right)
    docs = {t[0] for t in joined}
    for doc in docs:
        mass_in = sum(s for d, _, s in left if d == doc) + \
            sum(s for d, _, s in right if d == doc)
        mass_out = sum(s for d, _, s in joined if d == doc)
        assert mass_out == pytest.approx(mass_in)


def test_select_silently_drops_mass(engine):
    joined = engine.join(engine.atom("p0", "quick"), engine.atom("p1", "fox"))
    pred = Pred("DISTANCE", ("p0", "p1"), (1,))
    selected = engine.select(joined, pred)
    assert sum(s for _, _, s in selected) < sum(s for _, _, s in joined)


def test_document_scores_sum_matches(engine):
    tuples = [(0, {}, 1.0), (0, {}, 2.0), (3, {}, 4.0)]
    assert engine.document_scores(tuples) == {0: 3.0, 3: 4.0}
