"""Parallel sharded execution: exact equivalence with serial execution.

The headline property (the paper's score-consistency contract extended
to physical distribution): for every shard count, every scheme, and
every query, ``execute_sharded`` returns byte-for-byte the ranking the
serial engine returns — same documents, same scores, same order.  It is
checked exhaustively over the tiny suite and generatively over random
corpora with hypothesis.

Resource-governance composition is tested through the ``guard_factory``
seam: a fake clock expires the deadline inside exactly one shard, and
the merged outcome must degrade exactly like a serial partial result
(``on_limit="partial"``) or raise the serial exception
(``on_limit="error"``)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.collection import DocumentCollection
from repro.errors import QueryTimeoutError
from repro.exec.engine import execute, make_runtime
from repro.exec.limits import QueryGuard, QueryLimits
from repro.exec.parallel import (
    ShardGuard,
    execute_sharded,
    merge_ranked,
    required_keywords,
    split_limits,
)
from repro.graft.optimizer import Optimizer
from repro.index.builder import build_index
from repro.index.shard import ShardedIndex
from repro.mcalc.parser import parse_query
from repro.sa.context import IndexScoringContext
from repro.sa.registry import get_scheme

from tests.conftest import SCHEME_NAMES, TINY_QUERIES

SHARD_COUNTS = (1, 2, 3, 7)


def _serial(index, ctx, scheme, result, top_k=None, limits=None):
    runtime = make_runtime(index, scheme, result.info, ctx, limits=limits)
    return execute(result.plan, runtime, top_k=top_k)


def _sharded(index, ctx, scheme, result, shards, **kw):
    sharded = ShardedIndex(index, shards)
    return execute_sharded(
        sharded, result.plan, scheme, result.info, ctx, **kw
    )


# -- exact serial equivalence ---------------------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("text", TINY_QUERIES)
def test_sharded_equals_serial_all_schemes(
    tiny_collection, tiny_index, tiny_ctx, shards, text
):
    query = parse_query(text, tiny_collection.analyzer)
    for scheme_name in SCHEME_NAMES:
        scheme = get_scheme(scheme_name)
        result = Optimizer(scheme, tiny_index).optimize(query)
        serial = _serial(tiny_index, tiny_ctx, scheme, result)
        par = _sharded(tiny_index, tiny_ctx, scheme, result, shards)
        assert par.results == serial, (scheme_name, text, shards)
        assert par.tripped is None
        assert par.shard_count == shards


@pytest.mark.parametrize("shards", (2, 3))
@pytest.mark.parametrize("top_k", (1, 2, 5))
def test_top_k_truncation_matches_serial(
    tiny_collection, tiny_index, tiny_ctx, shards, top_k
):
    query = parse_query("quick (fox | dog)", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    serial = _serial(tiny_index, tiny_ctx, scheme, result, top_k=top_k)
    par = _sharded(
        tiny_index, tiny_ctx, scheme, result, shards, top_k=top_k
    )
    assert par.results == serial


_VOCAB = ("quick", "fox", "dog", "lazy", "brown", "jumps", "walk")

_PROPERTY_QUERIES = (
    "quick fox",
    '"quick fox"',
    "quick (fox | dog)",
    "fox -lazy",
    "(quick fox)ORDER",
)


@settings(max_examples=30, deadline=None)
@given(
    docs=st.lists(
        st.lists(st.sampled_from(_VOCAB), min_size=2, max_size=10),
        min_size=3,
        max_size=12,
    ),
    text=st.sampled_from(_PROPERTY_QUERIES),
    scheme_name=st.sampled_from(SCHEME_NAMES),
    shards=st.sampled_from(SHARD_COUNTS),
)
def test_sharded_equals_serial_property(docs, text, scheme_name, shards):
    collection = DocumentCollection()
    for words in docs:
        collection.add_text(" ".join(words))
    index = build_index(collection)
    ctx = IndexScoringContext(index)
    scheme = get_scheme(scheme_name)
    query = parse_query(text, collection.analyzer)
    result = Optimizer(scheme, index).optimize(query)
    serial = _serial(index, ctx, scheme, result)
    par = _sharded(index, ctx, scheme, result, shards)
    assert par.results == serial
    assert par.shards_pruned + len(par.shard_runs) == shards


# -- partition pruning ----------------------------------------------------


def test_required_keywords(tiny_collection, tiny_index):
    scheme = get_scheme("sumbest")

    def required(text):
        query = parse_query(text, tiny_collection.analyzer)
        return required_keywords(
            Optimizer(scheme, tiny_index).optimize(query).plan
        )

    assert required("quick fox") == {"quick", "fox"}
    assert required('"quick fox"') == {"quick", "fox"}
    # A union match may come from either branch: only keywords required
    # by both branches survive.
    assert required("quick (fox | dog)") == {"quick"}
    # Negation filters but never produces: left side only.
    assert required("fox -terrier") == {"fox"}
    assert required("(quick fox)ORDER") == {"quick", "fox"}


def test_pruned_shards_are_skipped_but_results_exact(
    tiny_collection, tiny_index, tiny_ctx
):
    # 'terrier' occurs only in doc 3: with one doc per shard, every other
    # shard is provably empty and must be pruned.
    query = parse_query("fox terrier", tiny_collection.analyzer)
    scheme = get_scheme("anysum")
    result = Optimizer(scheme, tiny_index).optimize(query)
    serial = _serial(tiny_index, tiny_ctx, scheme, result)
    par = _sharded(
        tiny_index, tiny_ctx, scheme, result, tiny_index.num_docs
    )
    assert par.results == serial
    assert par.shards_pruned == tiny_index.num_docs - 1
    assert len(par.shard_runs) == 1


def test_all_shards_pruned_returns_empty(
    tiny_collection, tiny_index, tiny_ctx
):
    query = parse_query("quick zebra", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    par = _sharded(tiny_index, tiny_ctx, scheme, result, 3)
    assert par.results == []
    assert par.shards_pruned == 3
    assert par.shard_runs == []


def test_all_shards_pruned_still_traces_under_profile(
    tiny_collection, tiny_index, tiny_ctx
):
    # The observability contract promises a trace whenever profiling is
    # on — even when pruning proves the answer empty without running a
    # single shard.
    query = parse_query("quick zebra", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    par = _sharded(tiny_index, tiny_ctx, scheme, result, 3, profile=True)
    assert par.results == []
    assert par.trace_root is not None
    assert par.trace_root.op_name == "ParallelMerge"
    assert "0/3 shards" in par.trace_root.label
    assert par.trace_root.children == []
    assert par.trace_root.stats.rows_out == 0


# -- budget splitting and merging -----------------------------------------


def test_split_limits():
    assert split_limits(None, 4) == [None] * 4
    limits = QueryLimits(deadline_ms=50.0)
    assert split_limits(limits, 3) == [limits] * 3  # nothing to split
    limits = QueryLimits(max_rows=10, max_matches_per_doc=7)
    parts = split_limits(limits, 3)
    assert [p.max_rows for p in parts] == [4, 3, 3]
    assert all(p.max_matches_per_doc == 7 for p in parts)
    # Never split below one row.
    parts = split_limits(QueryLimits(max_rows=2), 5)
    assert [p.max_rows for p in parts] == [1, 1, 1, 1, 1]


def test_merge_ranked_is_exact_sort():
    a = [(0, 3.0), (2, 1.0)]
    b = [(1, 3.0), (3, 1.0), (4, 0.5)]
    c = []
    merged = merge_ranked([a, b, c])
    assert merged == [(0, 3.0), (1, 3.0), (2, 1.0), (3, 1.0), (4, 0.5)]
    assert merge_ranked([a, b], top_k=2) == [(0, 3.0), (1, 3.0)]


# -- resource governance across shards ------------------------------------


class _ExpiredClockGuard(ShardGuard):
    """A shard guard whose clock is always past the deadline and whose
    check interval is one row, so the first charge site trips."""

    DEADLINE_CHECK_INTERVAL = 1

    def __init__(self, limits, deadline_at, cancel):
        super().__init__(
            limits,
            deadline_at=deadline_at,
            cancel=cancel,
            clock=lambda: float("inf"),
        )


def _one_slow_shard_factory(slow_shard: int):
    def factory(shard_index, limits, deadline_at, cancel):
        if shard_index == slow_shard:
            return _ExpiredClockGuard(limits, deadline_at, cancel)
        return ShardGuard(limits, deadline_at=deadline_at, cancel=cancel)

    return factory


def test_mid_query_deadline_degrades_to_partial(
    tiny_collection, tiny_index, tiny_ctx
):
    query = parse_query("quick (fox | dog)", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    serial = dict(_serial(tiny_index, tiny_ctx, scheme, result))
    limits = QueryLimits(deadline_ms=60_000.0, on_limit="partial")
    par = _sharded(
        tiny_index, tiny_ctx, scheme, result, 3,
        limits=limits,
        guard_factory=_one_slow_shard_factory(0),
    )
    assert par.tripped == "deadline_ms"
    expired = [r for r in par.shard_runs if r.shard_id == 0]
    healthy = [r for r in par.shard_runs if r.shard_id != 0]
    assert expired and expired[0].tripped == "deadline_ms"
    assert all(r.tripped is None for r in healthy)
    # Partial results are a subset of the serial ranking with identical
    # scores, and the healthy shards' documents are all present.
    for doc, score in par.results:
        assert serial[doc] == score
    healthy_docs = {
        doc for r in healthy for doc, _ in r.rows
    }
    assert healthy_docs <= {doc for doc, _ in par.results}


def test_mid_query_deadline_raises_on_error_mode(
    tiny_collection, tiny_index, tiny_ctx
):
    query = parse_query("quick (fox | dog)", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    limits = QueryLimits(deadline_ms=60_000.0, on_limit="error")
    with pytest.raises(QueryTimeoutError):
        _sharded(
            tiny_index, tiny_ctx, scheme, result, 3,
            limits=limits,
            guard_factory=_one_slow_shard_factory(1),
        )


def test_max_rows_budget_splits_across_shards(
    tiny_collection, tiny_index, tiny_ctx
):
    query = parse_query("quick fox", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    limits = QueryLimits(max_rows=3, on_limit="partial")
    par = _sharded(
        tiny_index, tiny_ctx, scheme, result, 2, limits=limits
    )
    assert par.tripped == "max_rows"
    serial = dict(_serial(tiny_index, tiny_ctx, scheme, result))
    for doc, score in par.results:
        assert serial[doc] == score


def test_default_guards_are_shard_guards(
    tiny_collection, tiny_index, tiny_ctx
):
    # The default factory must produce always-active guards so a sibling
    # failure can cancel a shard even on an unlimited query.
    guards = []

    def spy(shard_index, limits, deadline_at, cancel):
        from repro.exec.parallel import _default_guard_factory

        guard = _default_guard_factory(
            shard_index, limits, deadline_at, cancel
        )
        guards.append(guard)
        return guard

    query = parse_query("quick fox", tiny_collection.analyzer)
    scheme = get_scheme("sumbest")
    result = Optimizer(scheme, tiny_index).optimize(query)
    par = _sharded(
        tiny_index, tiny_ctx, scheme, result, 2, guard_factory=spy
    )
    assert par.results
    assert guards and all(isinstance(g, QueryGuard) for g in guards)
    assert all(g.active for g in guards)
