"""Engine entry-point tests."""

import pytest

from repro.errors import PlanError
from repro.exec.engine import execute, execute_streaming, make_runtime
from repro.graft.canonical import canonical_plan
from repro.graft.optimizer import Optimizer
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def test_streaming_yields_ascending_doc_order(tiny_index):
    scheme = get_scheme("sumbest")
    plan, info = canonical_plan(parse_query("fox"), scheme)
    docs = [d for d, _ in execute_streaming(plan, make_runtime(tiny_index, scheme, info))]
    assert docs == sorted(docs)


def test_execute_ranks_descending_with_doc_tiebreak(tiny_index):
    scheme = get_scheme("anysum")
    res = Optimizer(scheme, tiny_index).optimize(parse_query("fox"))
    ranked = execute(res.plan, make_runtime(tiny_index, scheme, res.info))
    scores = [s for _, s in ranked]
    assert scores == sorted(scores, reverse=True)
    for (d1, s1), (d2, s2) in zip(ranked, ranked[1:]):
        if s1 == s2:
            assert d1 < d2


def test_top_k_is_prefix_of_full(tiny_index):
    scheme = get_scheme("meansum")
    res = Optimizer(scheme, tiny_index).optimize(parse_query("quick dog"))
    runtime = make_runtime(tiny_index, scheme, res.info)
    full = execute(res.plan, runtime)
    runtime2 = make_runtime(tiny_index, scheme, res.info)
    top = execute(res.plan, runtime2, top_k=2)
    assert top == full[:2]


def test_incomplete_plan_rejected(tiny_index):
    scheme = get_scheme("sumbest")
    from repro.ma.translate import matching_subplan
    from repro.graft.canonical import make_query_info

    q = parse_query("fox")
    info = make_query_info(q, scheme)
    with pytest.raises(PlanError):
        list(execute_streaming(
            matching_subplan(q), make_runtime(tiny_index, scheme, info)
        ))


def test_no_matches_yields_empty(tiny_index):
    scheme = get_scheme("sumbest")
    res = Optimizer(scheme, tiny_index).optimize(parse_query("qzxv"))
    assert execute(res.plan, make_runtime(tiny_index, scheme, res.info)) == []


def test_runtime_defaults_to_index_context(tiny_index):
    scheme = get_scheme("sumbest")
    from repro.graft.canonical import make_query_info
    from repro.sa.context import IndexScoringContext

    runtime = make_runtime(
        tiny_index, scheme, make_query_info(parse_query("fox"), scheme)
    )
    assert isinstance(runtime.ctx, IndexScoringContext)
    assert runtime.ctx.index is tiny_index
