"""Physical operator unit tests."""

import pytest

from repro.errors import ExecutionError
from repro.exec.compile import compile_plan
from repro.exec.engine import make_runtime
from repro.exec.iterator import DocCursor, RowSchema
from repro.graft.canonical import make_query_info
from repro.ma.match_table import ANY_POSITION
from repro.ma.nodes import (
    AntiJoin,
    Atom,
    GroupCount,
    Join,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
)
from repro.mcalc.ast import Pred
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


@pytest.fixture
def runtime(tiny_index):
    q = parse_query("quick fox dog lazy")
    scheme = get_scheme("sumbest")
    return make_runtime(tiny_index, scheme, make_query_info(q, scheme))


def drain(op):
    """All (doc, rows-list) groups of an operator."""
    out = []
    while True:
        group = op.next_doc()
        if group is None:
            return out
        out.append((group[0], list(group[1])))


def test_row_schema_indices():
    s = RowSchema(positions=("a", "b"), scores=("a", "s"))
    assert s.position_index("b") == 1
    assert s.count_index == 2
    assert s.score_index("s") == 4
    assert s.width == 5
    with pytest.raises(ExecutionError):
        s.position_index("zz")
    with pytest.raises(ExecutionError):
        s.score_index("zz")


class TestScans:
    def test_atom_scan_rows(self, runtime, tiny_index):
        op = compile_plan(Atom("p0", "lazy"), runtime)
        groups = drain(op)
        assert [g[0] for g in groups] == [0, 4]
        assert groups[0][1] == [(7, 1)]  # offset 7, count 1

    def test_atom_scan_seek(self, runtime):
        op = compile_plan(Atom("p0", "dog"), runtime)
        op.seek_doc(3)
        groups = drain(op)
        assert [g[0] for g in groups] == [3, 4, 6]

    def test_precount_scan_rows(self, runtime):
        op = compile_plan(PreCountAtom("p0", "dog"), runtime)
        groups = drain(op)
        by_doc = {d: rows for d, rows in groups}
        assert by_doc[4] == [(ANY_POSITION, 3)]  # 'dog' x3 in doc 4
        assert by_doc[0] == [(ANY_POSITION, 1)]

    def test_precount_bills_doc_entries_not_positions(self, runtime):
        op = compile_plan(PreCountAtom("p0", "dog"), runtime)
        drain(op)
        assert runtime.metrics.positions_scanned == 0
        assert runtime.metrics.doc_entries_scanned == 5

    def test_atom_scan_bills_positions_lazily(self, runtime):
        op = compile_plan(Atom("p0", "dog"), runtime)
        group = op.next_doc()
        assert runtime.metrics.positions_scanned == 0  # nothing consumed yet
        next(group[1])
        assert runtime.metrics.positions_scanned == 1


class TestForgetAndCount:
    def test_forget_replaces_cells(self, runtime):
        plan = PositionProject(Atom("p0", "dog"), ("p0",))
        groups = drain(compile_plan(plan, runtime))
        assert all(
            row == (ANY_POSITION, 1) for _, rows in groups for row in rows
        )

    def test_count_collapses_identical_rows(self, runtime):
        plan = GroupCount(PositionProject(Atom("p0", "dog"), ("p0",)))
        groups = drain(compile_plan(plan, runtime))
        by_doc = {d: rows for d, rows in groups}
        assert by_doc[4] == [(ANY_POSITION, 3)]

    def test_count_preserves_distinct_rows(self, runtime):
        plan = GroupCount(Atom("p0", "dog"))
        groups = drain(compile_plan(plan, runtime))
        by_doc = {d: rows for d, rows in groups}
        assert sorted(by_doc[4]) == [(4, 1), (5, 1), (6, 1)]


class TestMergeJoin:
    def test_join_is_per_doc_cross_product(self, runtime):
        plan = Join(Atom("p0", "quick"), Atom("p1", "fox"))
        groups = drain(compile_plan(plan, runtime))
        by_doc = {d: rows for d, rows in groups}
        # Doc 1: 'quick' x2, 'fox' x1 -> 2 rows; doc 4: 2x2 -> 4 rows.
        assert len(by_doc[1]) == 2
        assert len(by_doc[4]) == 4

    def test_join_multiplies_counts(self, runtime):
        plan = Join(
            GroupCount(PositionProject(Atom("p0", "quick"), ("p0",))),
            GroupCount(PositionProject(Atom("p1", "fox"), ("p1",))),
        )
        groups = drain(compile_plan(plan, runtime))
        by_doc = {d: rows for d, rows in groups}
        assert by_doc[4] == [(ANY_POSITION, ANY_POSITION, 4)]

    def test_join_evaluates_predicates(self, runtime):
        pred = Pred("DISTANCE", ("p0", "p1"), (1,))
        plan = Join(Atom("p0", "quick"), Atom("p1", "fox"), (pred,))
        groups = drain(compile_plan(plan, runtime))
        rows = [r for _, rs in groups for r in rs]
        assert all(r[1] - r[0] == 1 for r in rows)

    def test_predicate_on_forgotten_column_rejected(self, runtime):
        pred = Pred("DISTANCE", ("p0", "p1"), (1,))
        plan = Join(
            PositionProject(Atom("p0", "quick"), ("p0",)),
            Atom("p1", "fox"),
            (pred,),
        )
        op = compile_plan(plan, runtime)
        with pytest.raises(ExecutionError):
            drain(op)

    def test_overlapping_schemas_rejected(self, runtime):
        plan = Join(Atom("p0", "quick"), Atom("p0", "fox"))
        with pytest.raises(ExecutionError):
            compile_plan(plan, runtime)


class TestUnion:
    def test_union_pads_with_empty(self, runtime):
        plan = Union(Atom("p0", "lazy"), Atom("p1", "terrier"))
        groups = drain(compile_plan(plan, runtime))
        by_doc = {d: rows for d, rows in groups}
        assert (7, None, 1) in by_doc[0]        # lazy side, p1 padded
        assert (None, 3, 1) in by_doc[3]        # terrier side, p0 padded

    def test_union_left_rows_first_on_shared_doc(self, runtime):
        plan = Union(Atom("p0", "quick"), Atom("p1", "fox"))
        groups = drain(compile_plan(plan, runtime))
        rows = dict(groups)[0]
        assert rows[0][0] is not None  # left branch first
        assert rows[-1][0] is None

    def test_union_seek(self, runtime):
        plan = Union(Atom("p0", "lazy"), Atom("p1", "terrier"))
        op = compile_plan(plan, runtime)
        op.seek_doc(2)
        groups = drain(op)
        assert [g[0] for g in groups] == [3, 4]


class TestSortAndSelect:
    def test_sort_orders_rows_lexicographically(self, runtime):
        plan = Sort(
            Union(Atom("p0", "quick"), Atom("p1", "fox")), ("p0", "p1")
        )
        groups = drain(compile_plan(plan, runtime))
        rows = dict(groups)[4]
        from repro.ma.match_table import cell_sort_key

        keys = [tuple(cell_sort_key(c) for c in r[:2]) for r in rows]
        assert keys == sorted(keys)

    def test_select_filters(self, runtime):
        pred = Pred("PROXIMITY", ("p0", "p1"), (2,))
        plan = Select(Join(Atom("p0", "quick"), Atom("p1", "fox")), (pred,))
        groups = drain(compile_plan(plan, runtime))
        for _, rows in groups:
            for r in rows:
                assert abs(r[0] - r[1]) <= 2


class TestAntiJoin:
    def test_excludes_docs_present_on_right(self, runtime):
        plan = AntiJoin(Atom("p0", "fox"), Atom("q0", "terrier"))
        groups = drain(compile_plan(plan, runtime))
        assert [g[0] for g in groups] == [0, 1, 4, 6]  # doc 3 has terrier


class TestDocCursor:
    def test_seek_is_noop_when_at_or_past(self, runtime):
        cur = DocCursor(compile_plan(Atom("p0", "dog"), runtime))
        cur.seek(0)
        first = cur.doc()
        cur.seek(first)  # exact position: no-op
        assert cur.doc() == first

    def test_exhausted_cursor_reports_none(self, runtime):
        cur = DocCursor(compile_plan(Atom("p0", "terrier"), runtime))
        cur.advance()
        assert cur.doc() is None
        with pytest.raises(ExecutionError):
            cur.rows()
