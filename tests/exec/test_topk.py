"""Rank-join / rank-union top-k tests."""

import pytest

from repro.exec.engine import execute, make_runtime
from repro.exec.topk import rank_join_applicable, rank_topk
from repro.errors import OptimizationError
from repro.graft.optimizer import Optimizer
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def full_ranking(query, scheme, index, ctx):
    res = Optimizer(scheme, index).optimize(query)
    return execute(res.plan, make_runtime(index, scheme, res.info, ctx))


class TestApplicability:
    def test_anysum_conjunction_qualifies(self):
        assert rank_join_applicable(parse_query("a b"), get_scheme("anysum"))

    def test_anysum_disjunction_qualifies(self):
        assert rank_join_applicable(parse_query("a | b"), get_scheme("anysum"))

    def test_predicates_disqualify(self):
        assert not rank_join_applicable(
            parse_query('"a b"'), get_scheme("anysum")
        )

    def test_nested_boolean_disqualifies(self):
        assert not rank_join_applicable(
            parse_query("a (b | c)"), get_scheme("anysum")
        )

    def test_column_first_scheme_disqualifies(self):
        assert not rank_join_applicable(parse_query("a b"), get_scheme("sumbest"))

    def test_row_first_scheme_disqualifies(self):
        assert not rank_join_applicable(
            parse_query("a b"), get_scheme("event-model")
        )

    def test_rank_topk_raises_when_inapplicable(self, tiny_index):
        with pytest.raises(OptimizationError):
            rank_topk(parse_query('"a b"'), get_scheme("anysum"), tiny_index, 3)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3, 10])
    def test_conjunctive_topk_matches_full_evaluation(
        self, k, tiny_index, tiny_ctx
    ):
        scheme = get_scheme("anysum")
        q = parse_query("quick fox")
        want = full_ranking(q, scheme, tiny_index, tiny_ctx)[:k]
        got = rank_topk(q, scheme, tiny_index, k, tiny_ctx)
        assert got == pytest.approx(want)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_disjunctive_topk_matches_full_evaluation(
        self, k, tiny_index, tiny_ctx
    ):
        scheme = get_scheme("anysum")
        q = parse_query("fox | terrier")
        want = full_ranking(q, scheme, tiny_index, tiny_ctx)[:k]
        got = rank_topk(q, scheme, tiny_index, k, tiny_ctx)
        assert [d for d, _ in got] == [d for d, _ in want]
        for (d1, s1), (d2, s2) in zip(got, want):
            assert s1 == pytest.approx(s2)

    def test_three_way_conjunction(self, tiny_index, tiny_ctx):
        scheme = get_scheme("anysum")
        q = parse_query("quick fox dog")
        want = full_ranking(q, scheme, tiny_index, tiny_ctx)[:2]
        got = rank_topk(q, scheme, tiny_index, 2, tiny_ctx)
        assert got == pytest.approx(want)


class TestEarlyTermination:
    def test_hrjn_stops_before_exhausting_streams(self):
        """Top-1 of two long anti-correlated streams should not pull
        everything."""
        from repro.exec.topk import _HRJN

        n = 2000
        left = [(float(n - i), i) for i in range(n)]
        right = [(float(n - i), i) for i in range(n)]
        hrjn = _HRJN(left, right, lambda a, b: a + b)
        top = next(iter(hrjn))
        assert top[1] == 0
        assert hrjn.docs_pulled < 2 * n


class TestEngineIntegration:
    def test_search_engine_rank_join_path(self, tiny_collection):
        from repro.api import SearchEngine

        engine = SearchEngine(tiny_collection)
        fast = engine.search("quick fox", scheme="anysum", top_k=2,
                             use_rank_join=True)
        full = engine.search("quick fox", scheme="anysum", top_k=2)
        assert fast.applied_optimizations == ["rank-join-topk"]
        assert [(r.doc_id, round(r.score, 9)) for r in fast] == \
            [(r.doc_id, round(r.score, 9)) for r in full]

    def test_rank_join_falls_back_when_inapplicable(self, tiny_collection):
        from repro.api import SearchEngine

        engine = SearchEngine(tiny_collection)
        out = engine.search('"quick fox"', scheme="anysum", top_k=2,
                            use_rank_join=True)
        assert out.applied_optimizations != ["rank-join-topk"]
        assert len(out) >= 1
