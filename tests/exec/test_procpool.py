"""Process-parallel shard execution: exact serial equivalence across the
process boundary, limit semantics that survive pickling, and the engine
wiring (fallbacks, pool lifecycle, strict audit over the process path).

The headline property extends the thread driver's contract one layer
further out: for every scheme and every query,
:func:`repro.exec.procpool.execute_sharded_process` must merge worker
results into byte-for-byte the ranking serial execution returns — the
workers score through a shared-memory :class:`PackedIndex`, so this is
also the end-to-end proof that the packed substrate is score-exact.

Every test that needs worker processes skips (rather than fails) where
shared memory or process pools are unavailable, mirroring the engine's
own graceful fallback.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SearchEngine, _resolve_executor
from repro.corpus.collection import DocumentCollection
from repro.errors import (
    ConfigError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.exec.engine import execute, make_runtime
from repro.exec.limits import QueryLimits
from repro.exec.procpool import (
    ProcessShardPool,
    ProcPoolUnavailableError,
    default_worker_count,
    execute_sharded_process,
)
from repro.graft.optimizer import Optimizer
from repro.index.builder import build_index
from repro.index.packed import pack_index
from repro.index.shard import ShardedIndex
from repro.mcalc.parser import parse_query
from repro.obs.audit import AuditConfig
from repro.sa.context import IndexScoringContext
from repro.sa.registry import get_scheme

from tests.conftest import SCHEME_NAMES, TINY_QUERIES


def _make_pool(index, shards):
    try:
        return ProcessShardPool(
            pack_index(index), shards,
            max_workers=default_worker_count(shards),
        )
    except ProcPoolUnavailableError as exc:
        pytest.skip(f"process pool unavailable: {exc}")


@pytest.fixture(scope="module")
def pool2(tiny_index):
    pool = _make_pool(tiny_index, 2)
    yield pool
    pool.close()


def _optimize(collection, index, scheme_name, text):
    scheme = get_scheme(scheme_name)
    query = parse_query(text, collection.analyzer)
    return scheme, Optimizer(scheme, index).optimize(query)


def _serial(index, ctx, scheme, result, **kw):
    runtime = make_runtime(index, scheme, result.info, ctx)
    return execute(result.plan, runtime, **kw)


# -- exact serial equivalence ---------------------------------------------


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
def test_process_equals_serial_all_queries(
    tiny_collection, tiny_index, tiny_ctx, pool2, scheme_name
):
    sharded = ShardedIndex(tiny_index, 2)
    for text in TINY_QUERIES:
        scheme, result = _optimize(
            tiny_collection, tiny_index, scheme_name, text
        )
        serial = _serial(tiny_index, tiny_ctx, scheme, result)
        par = execute_sharded_process(
            pool2, sharded, result.plan, scheme, result.info
        )
        assert par.results == serial, (scheme_name, text)
        assert par.tripped is None
        assert par.shard_count == 2
        assert par.shards_pruned + len(par.shard_runs) == 2


@pytest.mark.parametrize("top_k", (1, 2, 5))
def test_process_top_k_matches_serial(
    tiny_collection, tiny_index, tiny_ctx, pool2, top_k
):
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick (fox | dog)"
    )
    serial = _serial(tiny_index, tiny_ctx, scheme, result, top_k=top_k)
    par = execute_sharded_process(
        pool2, ShardedIndex(tiny_index, 2), result.plan, scheme,
        result.info, top_k=top_k,
    )
    assert par.results == serial


def test_unpicklable_scheme_is_unavailable_not_an_error(
    tiny_collection, tiny_index, pool2
):
    """A scheme pickle can fail *asynchronously* on the executor's
    feeder thread; the pre-flight pickle must turn it into the
    deterministic fall-back signal instead."""
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick fox"
    )
    local_cls = type("LocalScheme", (type(scheme),), {})
    with pytest.raises(ProcPoolUnavailableError):
        execute_sharded_process(
            pool2, ShardedIndex(tiny_index, 2), result.plan, local_cls(),
            result.info,
        )


def test_shard_count_mismatch_is_unavailable(
    tiny_collection, tiny_index, pool2
):
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick fox"
    )
    with pytest.raises(ProcPoolUnavailableError):
        execute_sharded_process(
            pool2, ShardedIndex(tiny_index, 3), result.plan, scheme,
            result.info,
        )


# -- limit semantics across the boundary ----------------------------------


def test_max_rows_error_mode_crosses_boundary(
    tiny_collection, tiny_index, pool2
):
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick fox"
    )
    with pytest.raises(ResourceExhaustedError) as exc:
        execute_sharded_process(
            pool2, ShardedIndex(tiny_index, 2), result.plan, scheme,
            result.info, limits=QueryLimits(max_rows=1, on_limit="error"),
        )
    # The structured tuple protocol must preserve the machine-readable
    # limit name, not just the message.
    assert exc.value.limit == "max_rows"


def test_deadline_error_mode_keeps_exception_class(
    tiny_collection, tiny_index, monkeypatch
):
    # The deadline is consulted every DEADLINE_CHECK_INTERVAL charges;
    # the tiny corpus never reaches the stride, so drop it to 1 and let
    # forked workers inherit the patched class (spawn re-imports and
    # would not see it — hence the start-method gate).
    from repro.exec.limits import QueryGuard

    monkeypatch.setattr(QueryGuard, "DEADLINE_CHECK_INTERVAL", 1)
    pool = _make_pool(tiny_index, 2)
    if pool._start_method != "fork":
        pool.close()
        pytest.skip("patched stride needs fork-inherited worker state")
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick (fox | dog)"
    )
    try:
        with pytest.raises(QueryTimeoutError) as exc:
            execute_sharded_process(
                pool, ShardedIndex(tiny_index, 2), result.plan, scheme,
                result.info,
                limits=QueryLimits(deadline_ms=1e-6, on_limit="error"),
            )
    finally:
        pool.close()
    assert exc.value.limit == "deadline_ms"


def test_max_rows_partial_mode_degrades(
    tiny_collection, tiny_index, tiny_ctx, pool2
):
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick fox"
    )
    par = execute_sharded_process(
        pool2, ShardedIndex(tiny_index, 2), result.plan, scheme,
        result.info, limits=QueryLimits(max_rows=1, on_limit="partial"),
    )
    assert par.tripped == "max_rows"
    # Partial results are a correctly-ranked prefix of the full merge.
    full = _serial(tiny_index, tiny_ctx, scheme, result)
    assert par.results == full[: len(par.results)]


# -- pool lifecycle --------------------------------------------------------


def test_pool_close_is_idempotent_and_fails_closed(
    tiny_collection, tiny_index
):
    pool = _make_pool(tiny_index, 2)
    assert not pool.closed
    pool.close()
    assert pool.closed
    pool.close()  # second close is a no-op, not an error
    scheme, result = _optimize(
        tiny_collection, tiny_index, "sumbest", "quick fox"
    )
    with pytest.raises(ProcPoolUnavailableError):
        execute_sharded_process(
            pool, ShardedIndex(tiny_index, 2), result.plan, scheme,
            result.info,
        )


# -- engine wiring ---------------------------------------------------------


def _engine_pair(tiny_collection, **kw):
    engine = SearchEngine(tiny_collection, shards=2, executor="process", **kw)
    out = engine.search("quick fox")
    if out.executor != "process":
        engine.close()
        pytest.skip("process executor unavailable on this platform")
    return engine


def test_engine_process_bit_identical_with_strict_audit(tiny_collection):
    """The strongest gate in the repo, pointed at the process path: a
    rate-1.0 strict audit shadow-executes the canonical plan serially
    and raises on any score divergence — for every scheme."""
    engine = _engine_pair(
        tiny_collection, audit=AuditConfig(rate=1.0, mode="strict")
    )
    serial = SearchEngine(tiny_collection, shards=1)
    try:
        for scheme_name in SCHEME_NAMES:
            for text in ("quick fox", '"quick fox"', "quick (fox | dog)"):
                out = engine.search(text, scheme=scheme_name)
                ref = serial.search(text, scheme=scheme_name)
                assert [(r.doc_id, r.score) for r in out.results] == \
                    [(r.doc_id, r.score) for r in ref.results], \
                    (scheme_name, text)
                assert out.executor == "process"
                assert out.audit is None or out.audit.ok
    finally:
        engine.close()
        serial.close()


def test_engine_profile_falls_back_to_thread(tiny_collection):
    engine = _engine_pair(tiny_collection)
    try:
        out = engine.search("quick fox", profile=True)
        # No trace objects cross the pickle boundary: profiled queries
        # run on threads, and still produce the trace tree.
        assert out.executor == "thread"
        assert out.stats is not None
    finally:
        engine.close()


def test_engine_add_invalidates_pool():
    # A private collection: add() mutates it, and the session-scoped
    # tiny_collection must stay pristine for every other test.
    from tests.conftest import make_tiny_collection

    engine = _engine_pair(make_tiny_collection())
    try:
        first = engine._procpool
        assert first is not None and not first.closed
        engine.add("a brand new quick fox document")
        out = engine.search("quick fox")
        assert out.executor == "process"
        second = engine._procpool
        assert second is not first
        assert first.closed  # the old generation's workers are gone
    finally:
        engine.close()


def test_engine_executor_setter_lifecycle(tiny_collection):
    engine = _engine_pair(tiny_collection)
    try:
        pool = engine._procpool
        engine.executor = "serial"
        assert pool.closed and engine._procpool is None
        out = engine.search("quick dog")
        assert out.executor == "serial"
        assert out.shard_count == 1
        engine.executor = "thread"
        out = engine.search("quick dog fox")
        assert out.executor == "thread"
        assert engine._procpool is None
    finally:
        engine.close()


def test_engine_close_retires_pool(tiny_collection):
    engine = _engine_pair(tiny_collection)
    pool = engine._procpool
    engine.close()
    assert pool.closed


def test_resolve_executor_env(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC", raising=False)
    assert _resolve_executor(None) == "thread"
    monkeypatch.setenv("REPRO_EXEC", "process")
    assert _resolve_executor(None) == "process"
    monkeypatch.setenv("REPRO_EXEC", "bogus")
    with pytest.raises(ConfigError):
        _resolve_executor(None)
    with pytest.raises(ConfigError):
        _resolve_executor("fibers")


# -- generative equivalence ------------------------------------------------

_VOCAB = ("quick", "fox", "dog", "lazy", "brown", "fence")
_PROPERTY_QUERIES = (
    "quick fox",
    '"quick fox"',
    "quick (fox | dog)",
    "fox -dog",
)


@settings(max_examples=8, deadline=None)
@given(
    docs=st.lists(
        st.lists(st.sampled_from(_VOCAB), min_size=2, max_size=8),
        min_size=2,
        max_size=8,
    ),
    text=st.sampled_from(_PROPERTY_QUERIES),
    scheme_name=st.sampled_from(SCHEME_NAMES),
)
def test_process_equals_serial_property(docs, text, scheme_name):
    collection = DocumentCollection()
    for words in docs:
        collection.add_text(" ".join(words))
    index = build_index(collection)
    scheme, result = _optimize(collection, index, scheme_name, text)
    serial = _serial(index, IndexScoringContext(index), scheme, result)
    try:
        pool = ProcessShardPool(pack_index(index), 2, max_workers=1)
    except ProcPoolUnavailableError as exc:
        pytest.skip(f"process pool unavailable: {exc}")
    try:
        par = execute_sharded_process(
            pool, ShardedIndex(index, 2), result.plan, scheme, result.info
        )
    finally:
        pool.close()
    assert par.results == serial
