"""LRUCache thread-safety: the service runs searches on a thread pool,
so cache get/put/clear race by design.  Without the internal lock, the
OrderedDict move-to-end/popitem pair corrupts under contention (KeyError
or RuntimeError from concurrent mutation); these tests hammer exactly
those interleavings."""

from __future__ import annotations

import threading

from repro.api import SearchEngine
from repro.exec.cache import CacheConfig, LRUCache

from tests.conftest import make_tiny_collection


def test_concurrent_get_put_clear_never_corrupts():
    cache = LRUCache(capacity=32)
    errors: list[BaseException] = []
    stop = threading.Event()
    barrier = threading.Barrier(9)

    def reader(seed: int) -> None:
        barrier.wait()
        try:
            i = seed
            while not stop.is_set():
                cache.get(("k", i % 100))
                _ = ("k", i % 100) in cache
                i += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def writer(seed: int) -> None:
        barrier.wait()
        try:
            i = seed
            while not stop.is_set():
                cache.put(("k", i % 100), i)
                if i % 997 == 0:
                    cache.clear()
                i += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(4)
    ] + [
        threading.Thread(target=writer, args=(i * 37,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for t in threads:
        t.join()
    timer.cancel()
    assert not errors, errors
    assert len(cache) <= 32  # capacity invariant held throughout


def test_capacity_eviction_is_exact_under_contention():
    cache = LRUCache(capacity=8)
    barrier = threading.Barrier(8)

    def fill(base: int) -> None:
        barrier.wait()
        for i in range(500):
            cache.put((base, i), i)

    threads = [threading.Thread(target=fill, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) == 8


def test_concurrent_readers_with_generation_bump_invalidation():
    """Satellite acceptance: many reader threads share one engine's
    cache; between read bursts the corpus mutates (a generation bump).
    Every burst must return the *current* generation's exact results --
    a stale cache entry surviving the bump would surface immediately as
    the previous generation's scores -- and the racing readers within a
    burst must agree bit-identically."""
    engine = SearchEngine(
        make_tiny_collection(),
        cache=CacheConfig(plan_capacity=16, result_capacity=16),
        shards=1,
    )
    queries = ("quick fox", "lazy dog", "quick (fox | dog)")

    def truth() -> dict[str, tuple]:
        fresh = SearchEngine(engine.collection, shards=1)
        return {
            q: tuple((r.doc_id, r.score) for r in fresh.search(q).results)
            for q in queries
        }

    def burst(readers: int = 6, rounds: int = 5) -> set[tuple]:
        errors: list[BaseException] = []
        observed: set[tuple] = set()
        lock = threading.Lock()
        barrier = threading.Barrier(readers)

        def reader(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(rounds * len(queries)):
                    q = queries[(seed + i) % len(queries)]
                    outcome = engine.search(q)
                    snapshot = (
                        q,
                        tuple((r.doc_id, r.score)
                              for r in outcome.results),
                    )
                    with lock:
                        observed.add(snapshot)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(i,))
            for i in range(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        return observed

    for i in range(4):
        expected = truth()
        observed = burst()
        # Concurrent readers agreed, and agreed with the current
        # generation -- no stale entry survived the previous bump.
        assert observed == {(q, expected[q]) for q in queries}
        cached = engine.search(queries[0])
        assert cached.plan_cached  # the burst populated the cache
        engine.add(f"generation bump quick fox document {i}")  # bump

    stats = engine.cache_stats()
    assert stats["result"]["hits"] > 0
    # The result tier answers repeats outright; a different top_k
    # bypasses it and shows the plan tier serving concurrently-built
    # entries too.
    engine.search(queries[0])  # repopulate after the final bump
    outcome = engine.search(queries[0], top_k=3)
    assert outcome.plan_cached and not outcome.result_cached
