"""Deterministic fault injection across every physical operator.

These tests prove the engine's error contract: a raw, non-Graft failure
inside *any* physical operator — simulated by the harness in
:mod:`repro.exec.faults` — must surface through the public API as
:class:`repro.errors.ExecutionError` carrying the operator's name, never
as a foreign traceback.  The query configurations below are chosen so
that, together, their plans instantiate every physical operator class.
"""

from __future__ import annotations

import pytest

from repro import SearchEngine
from repro.errors import ExecutionError, GraftError
from repro.exec.faults import FaultInjector, FaultSpec, InjectedFault
from repro.exec.limits import QueryLimits
from repro.graft.optimizer import OptimizerOptions

#: Every physical operator class of the execution engine.
ALL_OPS = {
    "AtomScanOp",
    "PreCountScanOp",
    "ScoredPreCountScanOp",
    "MergeJoinOp",
    "ForwardScanJoinOp",
    "UnionOp",
    "SelectOp",
    "ForgetOp",
    "SortOp",
    "CountOp",
    "AntiJoinOp",
    "AlternateElimOp",
    "ScoreInitOp",
    "CombinePhiOp",
    "GroupScoreOp",
    "FinalizeOp",
}

#: Query/scheme/options combinations whose plans, together, instantiate
#: every operator class in ALL_OPS (verified by test_configs_cover_all_ops).
CONFIGS = [
    ("fused-leaf", dict(query="quick", scheme="sumbest")),
    ("optimized-conj", dict(query="quick dog", scheme="sumbest")),
    (
        "canonical-conj",
        dict(query="quick dog", scheme="sumbest", optimize=False),
    ),
    ("disjunction", dict(query="quick | dog", scheme="anysum")),
    (
        "canonical-disj",
        dict(query="quick | dog", scheme="sumbest", optimize=False),
    ),
    ("negation", dict(query="quick -lazy", scheme="sumbest")),
    (
        "eager-counting",
        dict(
            query="quick dog",
            scheme="sumbest",
            options=OptimizerOptions(pre_counting=False),
        ),
    ),
    (
        "unpushed-phrase",
        dict(
            query='"quick fox"',
            scheme="sumbest",
            options=OptimizerOptions(selection_pushing=False),
        ),
    ),
    (
        "forward-scan-phrase",
        dict(
            query='"quick fox"',
            scheme="anysum",
            options=OptimizerOptions(forward_scan=True),
        ),
    ),
]


def make_engine() -> SearchEngine:
    e = SearchEngine()
    e.add("the quick brown fox jumps over the lazy dog")
    e.add("a quick quick fox and a slow dog walk home")
    e.add("dogs and foxes are not the same animal")
    e.add("quick release fox terrier dog show dog fox")
    e.add("quick fox quick fox dog dog dog lazy")
    e.add("the brown dog naps while the brown fox runs quick")
    return e


@pytest.fixture(scope="module")
def engine():
    return make_engine()


def discover_ops(engine, kwargs) -> set[str]:
    """Operator classes instantiated by one configuration's plan."""
    probe = FaultInjector([])
    engine.search(faults=probe, **kwargs)
    return set(probe.seen_ops)


def test_configs_cover_all_ops(engine):
    seen = set()
    for _, kwargs in CONFIGS:
        seen |= discover_ops(engine, kwargs)
    assert seen == ALL_OPS


@pytest.mark.parametrize("name,kwargs", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_every_operator_surfaces_execution_error(engine, name, kwargs):
    """Fail each operator of each plan on its first next_doc call: the
    public API must raise ExecutionError naming that operator."""
    for op in sorted(discover_ops(engine, kwargs)):
        inj = FaultInjector([FaultSpec(op_name=op, fail_at_call=1)])
        with pytest.raises(ExecutionError) as info:
            engine.search(faults=inj, **kwargs)
        assert info.value.operator == op, f"{name}: wrong operator context"
        assert op in str(info.value)
        assert inj.fired, f"{name}: fault for {op} never fired"
        # The raw injected fault is preserved as the cause.
        assert isinstance(info.value.__cause__, InjectedFault)


def test_seek_doc_fault_is_wrapped(engine):
    # "fox" and "lazy" postings have gaps relative to each other, so the
    # zig-zag join must issue real seeks into the leaf scans.
    inj = FaultInjector(
        [FaultSpec(op_name="AtomScanOp", method="seek_doc", fail_at_call=1)]
    )
    with pytest.raises(ExecutionError) as info:
        engine.search("fox lazy", optimize=False, faults=inj)
    assert info.value.operator == "AtomScanOp"


def test_fail_on_doc_triggers_on_that_document(engine):
    inj = FaultInjector([FaultSpec(op_name="FinalizeOp", fail_on_doc=4)])
    with pytest.raises(ExecutionError) as info:
        engine.search("quick dog", faults=inj)
    assert "doc 4" in str(info.value)
    assert info.value.operator == "FinalizeOp"


def test_mid_stream_fault_does_not_corrupt_earlier_results(engine):
    """A fault on a later document must abort the query (not silently
    truncate it): no partial SearchOutcome leaks out of an error path."""
    inj = FaultInjector([FaultSpec(op_name="FinalizeOp", fail_on_doc=4)])
    with pytest.raises(ExecutionError):
        engine.search("quick dog", faults=inj)


def test_seeded_injection_is_deterministic(engine):
    messages = []
    for _ in range(2):
        inj = FaultInjector([FaultSpec(op_name=None)], seed=1234, max_call=8)
        with pytest.raises(ExecutionError) as info:
            engine.search("quick dog", faults=inj)
        messages.append(str(info.value))
    assert messages[0] == messages[1]


def test_seedless_unresolved_spec_rejected():
    with pytest.raises(GraftError):
        FaultInjector([FaultSpec(op_name="MergeJoinOp")])


def test_bad_fault_method_rejected():
    with pytest.raises(GraftError):
        FaultSpec(op_name="MergeJoinOp", method="explode", fail_at_call=1)


def test_faults_are_not_swallowed_by_partial_degradation(engine):
    """Graceful degradation applies to resource trips only: an injected
    operator failure must still raise, even with on_limit='partial'."""
    inj = FaultInjector([FaultSpec(op_name="MergeJoinOp", fail_at_call=1)])
    with pytest.raises(ExecutionError):
        engine.search(
            "quick dog",
            optimize=False,
            faults=inj,
            limits=QueryLimits(max_rows=10**9, on_limit="partial"),
        )


def test_no_injector_means_no_wrapping(engine):
    """Without a FaultInjector the fault path costs nothing and results
    are identical."""
    plain = engine.search("quick dog")
    probed = engine.search("quick dog", faults=FaultInjector([]))
    assert [(r.doc_id, r.score) for r in plain] == [
        (r.doc_id, r.score) for r in probed
    ]
