"""Forward-scan join tests, including the completeness property of the
two-pointer sweep (it may miss *extra* matches, never the existence of a
match — Section 5.2.2's guarantee)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.collection import DocumentCollection
from repro.exec.compile import compile_plan
from repro.exec.engine import execute, make_runtime
from repro.graft.canonical import make_query_info
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.index.builder import build_index
from repro.ma.nodes import Atom, Join
from repro.mcalc.ast import Pred
from repro.mcalc.parser import parse_query
from repro.mcalc.predicates import get_predicate
from repro.sa.registry import get_scheme


def forward_docs(index, pred):
    """Documents the forward-scan join emits for keywords a/b + pred."""
    scheme = get_scheme("anysum")
    q = parse_query("a b")
    runtime = make_runtime(index, scheme, make_query_info(q, scheme))
    plan = Join(Atom("p0", "a"), Atom("p1", "b"), (pred,), algorithm="forward")
    op = compile_plan(plan, runtime)
    docs = []
    while True:
        group = op.next_doc()
        if group is None:
            return docs
        doc, rows = group
        rows = list(rows)
        assert len(rows) == 1  # at most one match per document
        docs.append(doc)


def brute_docs(collection, pred):
    impl = get_predicate(pred.name)
    out = []
    for doc in collection:
        pa = doc.positions_of("a")
        pb = doc.positions_of("b")
        if any(impl.holds([x, y], pred.constants) for x in pa for y in pb):
            out.append(doc.doc_id)
    return out


positions_lists = st.lists(
    st.tuples(
        st.lists(st.integers(0, 30), max_size=6),
        st.lists(st.integers(0, 30), max_size=6),
    ),
    min_size=1,
    max_size=5,
)


def build_two_term_collection(specs):
    col = DocumentCollection()
    for pa, pb in specs:
        length = 32
        tokens = ["x"] * length
        for p in pb:
            tokens[p] = "b"
        for p in pa:
            tokens[p] = "a"  # 'a' wins collisions; brute force sees the same
        col.add_tokens(tokens)
    return col


@settings(max_examples=60, deadline=None)
@given(specs=positions_lists, span=st.integers(min_value=0, max_value=12))
def test_sweep_finds_a_match_whenever_one_exists_proximity(specs, span):
    col = build_two_term_collection(specs)
    index = build_index(col)
    pred = Pred("PROXIMITY", ("p0", "p1"), (span,))
    assert forward_docs(index, pred) == brute_docs(col, pred)


@settings(max_examples=60, deadline=None)
@given(specs=positions_lists, size=st.integers(min_value=1, max_value=12))
def test_sweep_finds_a_match_whenever_one_exists_window(specs, size):
    col = build_two_term_collection(specs)
    index = build_index(col)
    pred = Pred("WINDOW", ("p0", "p1"), (size,))
    assert forward_docs(index, pred) == brute_docs(col, pred)


@settings(max_examples=40, deadline=None)
@given(specs=positions_lists, n=st.integers(min_value=1, max_value=5))
def test_generic_first_match_complete_for_distance(specs, n):
    """DISTANCE is not sweepable; the generic lazy first-match path must
    still find every matching document."""
    col = build_two_term_collection(specs)
    index = build_index(col)
    pred = Pred("DISTANCE", ("p0", "p1"), (n,))
    assert forward_docs(index, pred) == brute_docs(col, pred)


def test_forward_plans_rank_like_merge_plans(tiny_collection, tiny_index, tiny_ctx):
    scheme = get_scheme("anysum")
    q = parse_query("(quick fox)PROXIMITY[3] dog")
    merge = Optimizer(scheme, tiny_index).optimize(q)
    fwd = Optimizer(
        scheme, tiny_index, OptimizerOptions(forward_scan=True)
    ).optimize(q)
    assert "forward-scan-join" in fwd.applied
    a = execute(merge.plan, make_runtime(tiny_index, scheme, merge.info, tiny_ctx))
    b = execute(fwd.plan, make_runtime(tiny_index, scheme, fwd.info, tiny_ctx))
    assert a == pytest.approx(b)
