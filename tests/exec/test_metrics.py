"""Work-counter tests: the cost model behind the paper's speedup claims.

The optimizations' value is *how much index data a plan touches*; these
tests pin the counters that the Figure 3 / Section 5.2.3 benchmarks rely
on (pre-counting reads document entries instead of positions; alternate
elimination abandons unconsumed join combinations).
"""

import pytest

from repro.bench.workload import bench_fixture
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


def run_with_metrics(query, scheme, index, options=None):
    res = Optimizer(scheme, index, options).optimize(query)
    runtime = make_runtime(index, scheme, res.info)
    execute(res.plan, runtime)
    return runtime.metrics, res


@pytest.fixture(scope="module")
def fx():
    return bench_fixture(num_docs=800)


def test_precount_reads_no_positions_for_free_keywords(fx):
    scheme = get_scheme("anysum")
    q = parse_query("san francisco fault line")
    metrics, res = run_with_metrics(q, scheme, fx.index)
    assert "pre-counting" in res.applied
    # All four keywords are free: the whole query runs on the
    # term-document index.
    assert metrics.positions_scanned == 0
    assert metrics.doc_entries_scanned > 0


def test_eager_count_reads_positions(fx):
    scheme = get_scheme("anysum")
    q = parse_query("san francisco fault line")
    options = OptimizerOptions(pre_counting=False, alternate_elimination=False)
    metrics, res = run_with_metrics(q, scheme, fx.index, options)
    assert "eager-counting" in res.applied
    assert metrics.positions_scanned > 0
    assert metrics.doc_entries_scanned == 0


def test_precount_touches_fewer_entries_than_eager_count(fx):
    scheme = get_scheme("anysum")
    q = parse_query("san francisco fault line")
    eager, _ = run_with_metrics(
        q, scheme, fx.index,
        OptimizerOptions(pre_counting=False, alternate_elimination=False),
    )
    pre, _ = run_with_metrics(
        q, scheme, fx.index, OptimizerOptions(alternate_elimination=False)
    )
    assert pre.doc_entries_scanned < eager.positions_scanned


def test_alternate_elimination_reduces_join_work(fx):
    """delta abandons a document's remaining cross-product combinations."""
    scheme = get_scheme("anysum")
    q = fx.queries["Q8"]
    base = OptimizerOptions(pre_counting=False, alternate_elimination=False)
    with_delta = OptimizerOptions(pre_counting=False, alternate_elimination=True)
    m_base, _ = run_with_metrics(q, scheme, fx.index, base)
    m_delta, r = run_with_metrics(q, scheme, fx.index, with_delta)
    assert "alternate-elimination" in r.applied
    assert m_delta.rows_joined <= m_base.rows_joined
    assert m_delta.positions_scanned <= m_base.positions_scanned


def test_q8_free_keyword_positions_are_small_fraction(fx):
    """Section 8's Amdahl's-law analysis: Q8's free keyword ('foss')
    accounts for a few percent of the positions the unoptimized plan
    scans, which is why pre-counting barely helps Q8."""
    scheme = get_scheme("anysum")
    q = fx.queries["Q8"]
    options = OptimizerOptions(
        eager_counting=False, pre_counting=False, alternate_elimination=False
    )
    metrics, _ = run_with_metrics(q, scheme, fx.index, options)
    foss = metrics.positions_by_keyword.get("foss", 0)
    total = metrics.positions_scanned
    assert total > 0
    assert foss / total < 0.15


def test_zigzag_seek_skips_postings(fx):
    """Joining a rare term against a common one must not scan the common
    term's full postings (the zig-zag skip benefit)."""
    scheme = get_scheme("anysum")
    q = parse_query("orlando free")
    options = OptimizerOptions(
        eager_counting=False, pre_counting=False,
        alternate_elimination=False, sort_elimination=True,
    )
    metrics, _ = run_with_metrics(q, scheme, fx.index, options)
    total_free_positions = fx.index.total_positions("free")
    scanned_free = metrics.positions_by_keyword.get("free", 0)
    assert scanned_free < total_free_positions
