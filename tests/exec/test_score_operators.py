"""Deep unit tests of the scoring-side physical operators: the
counts-incorporated invariant, join score cross-scaling, union score
padding, and the fused pre-count score scan."""

import pytest

from repro.exec.compile import compile_plan
from repro.exec.engine import make_runtime
from repro.exec.scan_ops import ScoredPreCountScanOp
from repro.graft.canonical import make_query_info
from repro.graft.plan import GroupScore, ScoreInit
from repro.ma.nodes import Atom, Join, PreCountAtom, Union
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme
from repro.sa.weighting import tfidf_meansum


def drain(op):
    out = {}
    while True:
        group = op.next_doc()
        if group is None:
            return out
        out[group[0]] = list(group[1])
    return out


def runtime_for(index, text, scheme_name="meansum"):
    scheme = get_scheme(scheme_name)
    q = parse_query(text)
    return make_runtime(index, scheme, make_query_info(q, scheme)), scheme, q


class TestFusedScan:
    def test_fusion_fires_for_eager_agg_leaf(self, tiny_index):
        runtime, scheme, _ = runtime_for(tiny_index, "dog fox")
        logical = GroupScore(
            ScoreInit(PreCountAtom("p0", "dog"), ("p0",), scale_by_count=True),
            counts_incorporated=True,
        )
        op = compile_plan(logical, runtime)
        assert isinstance(op, ScoredPreCountScanOp)

    def test_fused_scan_equals_unfused_pipeline(self, tiny_index):
        runtime, scheme, _ = runtime_for(tiny_index, "dog fox")
        logical = GroupScore(
            ScoreInit(PreCountAtom("p0", "dog"), ("p0",), scale_by_count=True),
            counts_incorporated=True,
        )
        fused = drain(compile_plan(logical, runtime))
        # Hand-build the unfused chain by defeating the pattern match
        # (vars tuple mismatch is enough).
        runtime2, _, _ = runtime_for(tiny_index, "dog fox")
        unfused_op = compile_plan(
            GroupScore(
                ScoreInit(
                    Join(PreCountAtom("p0", "dog"), PreCountAtom("p1", "fox")),
                    ("p0", "p1"),
                    scale_by_count=True,
                ),
                counts_incorporated=True,
            ),
            runtime2,
        )
        del unfused_op  # only needed to prove the pattern doesn't misfire
        for doc, rows in fused.items():
            ((count, score),) = rows
            tf = tiny_index.term_frequency(doc, "dog")
            assert count == tf
            expected = scheme.times(
                scheme.alpha(runtime.ctx, doc, "p0", "dog", -1), tf
            )
            assert score == pytest.approx(expected)

    def test_fused_scan_counts_metric(self, tiny_index):
        runtime, _, _ = runtime_for(tiny_index, "dog fox")
        logical = GroupScore(
            ScoreInit(PreCountAtom("p0", "dog"), ("p0",), scale_by_count=True),
            counts_incorporated=True,
        )
        drain(compile_plan(logical, runtime))
        assert runtime.metrics.doc_entries_scanned == \
            tiny_index.document_frequency("dog")


class TestJoinScoreScaling:
    def test_cross_scaling_maintains_invariant(self, tiny_index):
        """Joining two aggregated sides: each side's score column must end
        up aggregating count_l * count_r sub-rows."""
        runtime, scheme, _ = runtime_for(tiny_index, "quick fox")
        logical = Join(
            GroupScore(
                ScoreInit(PreCountAtom("p0", "quick"), ("p0",), True), True
            ),
            GroupScore(
                ScoreInit(PreCountAtom("p1", "fox"), ("p1",), True), True
            ),
        )
        op = compile_plan(logical, runtime)
        groups = drain(op)
        for doc, rows in groups.items():
            ((count, s0, s1),) = rows
            tq = tiny_index.term_frequency(doc, "quick")
            tf = tiny_index.term_frequency(doc, "fox")
            assert count == tq * tf
            # MeanSum internal scores are (sum, n): n must equal count.
            assert s0[1] == count
            assert s1[1] == count
            expected_sum = tfidf_meansum(runtime.ctx, doc, "quick") * count
            assert s0[0] == pytest.approx(expected_sum)


class TestUnionScorePadding:
    def test_missing_score_columns_padded_with_empty_alpha(self, tiny_index):
        runtime, scheme, _ = runtime_for(tiny_index, "lazy terrier")
        logical = Union(
            GroupScore(
                ScoreInit(PreCountAtom("p0", "lazy"), ("p0",), True), True
            ),
            GroupScore(
                ScoreInit(PreCountAtom("p1", "terrier"), ("p1",), True), True
            ),
        )
        op = compile_plan(logical, runtime)
        groups = drain(op)
        # Doc 3 only has 'terrier': its p0 score must be alpha(empty).
        (row,) = groups[3]
        count, s0, s1 = row
        expected_empty = scheme.alpha(runtime.ctx, 3, "p0", "lazy", None)
        assert s0 == pytest.approx(expected_empty)
        assert s1[0] > 0

    def test_padding_scales_by_count(self, tiny_index):
        runtime, scheme, _ = runtime_for(tiny_index, "lazy dog")
        logical = Union(
            GroupScore(
                ScoreInit(PreCountAtom("p0", "lazy"), ("p0",), True), True
            ),
            GroupScore(
                ScoreInit(PreCountAtom("p1", "dog"), ("p1",), True), True
            ),
        )
        groups = drain(compile_plan(logical, runtime))
        # Doc 4 has dog x3 and lazy x1: the dog-branch row must pad the
        # lazy column with times(alpha(empty), 3) -> count 3 for MeanSum.
        dog_rows = [r for r in groups[4] if r[0] == 3]
        (row,) = dog_rows
        _, s0, _ = row
        assert s0 == (0.0, 3)


class TestGroupScoreCountsPending:
    def test_times_expansion_matches_folding(self, tiny_index):
        """GroupScore under counts-pending must expand multiplicities via
        times(), equal to folding the alternate combinator."""
        runtime, scheme, _ = runtime_for(tiny_index, "dog fox")
        from repro.ma.nodes import GroupCount, PositionProject

        logical = GroupScore(
            ScoreInit(
                GroupCount(PositionProject(Atom("p0", "dog"), ("p0",))),
                ("p0",),
                scale_by_count=False,
            ),
            counts_incorporated=False,
        )
        groups = drain(compile_plan(logical, runtime))
        for doc, rows in groups.items():
            ((count, score),) = rows
            tf = tiny_index.term_frequency(doc, "dog")
            alpha = scheme.alpha(runtime.ctx, doc, "p0", "dog", -1)
            folded = alpha
            for _ in range(tf - 1):
                folded = scheme.alt(folded, alpha)
            assert count == tf
            assert score == pytest.approx(folded)
