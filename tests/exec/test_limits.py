"""Resource governance: deadlines, budgets, caps, graceful degradation.

The O(W^Q) worst case of Section 6 means an adversarial query can force
the engine to enumerate an astronomically large match table; these tests
prove the QueryGuard bounds that work, that error-mode trips surface as
typed exceptions, and that partial-mode degradation never returns a
mis-ranked or mis-scored prefix.
"""

from __future__ import annotations

import time

import pytest

from repro import SearchEngine
from repro.errors import (
    GraftError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.exec.limits import QueryGuard, QueryLimits


# -- fixtures ---------------------------------------------------------------


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add("the quick brown fox jumps over the lazy dog")
    e.add("a quick quick fox and a slow dog walk home")
    e.add("dogs and foxes are not the same animal")
    e.add("quick release fox terrier dog show dog fox")
    e.add("quick fox quick fox dog dog dog lazy")
    e.add("nothing relevant here at all just filler words")
    e.add("the brown dog naps while the brown fox runs quick")
    return e


@pytest.fixture
def adversarial_engine():
    """One document where a single keyword repeats many times: a Q-keyword
    query over it has an O(W^Q) match table (60^4 = 12.96M rows here)."""
    e = SearchEngine()
    e.add("pad " + "boom " * 60 + "tail")
    e.add("a normal document with a boom in it")
    return e


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# -- QueryLimits validation -------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"deadline_ms": 0},
        {"deadline_ms": -5},
        {"max_rows": 0},
        {"max_rows": -1},
        {"max_matches_per_doc": 0},
        {"on_limit": "explode"},
    ],
)
def test_bad_limits_rejected(kwargs):
    with pytest.raises(GraftError):
        QueryLimits(**kwargs)


def test_default_limits_are_unlimited():
    limits = QueryLimits()
    assert limits.unlimited
    assert not QueryGuard(limits).active
    assert not QueryGuard(None).active


# -- QueryGuard unit behavior (fake clock) ----------------------------------


def test_row_budget_trips_exactly_past_the_budget():
    guard = QueryGuard(QueryLimits(max_rows=10))
    guard.charge_rows(10)  # exactly the budget: fine
    assert guard.tripped is None
    with pytest.raises(ResourceExhaustedError) as info:
        guard.charge_rows()
    assert guard.tripped == "max_rows"
    assert info.value.limit == "max_rows"


def test_deadline_trips_via_fake_clock():
    clock = FakeClock()
    guard = QueryGuard(QueryLimits(deadline_ms=100), clock=clock)
    guard.check_deadline()  # within deadline
    clock.now += 0.2
    with pytest.raises(QueryTimeoutError) as info:
        guard.check_deadline()
    assert guard.tripped == "deadline_ms"
    assert info.value.limit == "deadline_ms"
    assert isinstance(info.value, ResourceExhaustedError)


def test_tick_consults_clock_every_interval():
    clock = FakeClock()
    guard = QueryGuard(QueryLimits(deadline_ms=100), clock=clock)
    clock.now += 1.0  # already past the deadline
    for _ in range(QueryGuard.DEADLINE_CHECK_INTERVAL - 1):
        guard.tick()  # batched: no clock consult yet
    with pytest.raises(QueryTimeoutError):
        guard.tick()


def test_start_rearms_deadline():
    clock = FakeClock()
    guard = QueryGuard(QueryLimits(deadline_ms=100), clock=clock)
    clock.now += 10.0
    guard.start()  # optimizer time must not count against the deadline
    guard.check_deadline()


def test_doc_cap_resets_per_document():
    guard = QueryGuard(QueryLimits(max_matches_per_doc=3))
    for doc in (1, 2, 3):
        guard.charge_doc_rows(doc, 3)
    with pytest.raises(ResourceExhaustedError):
        guard.charge_doc_rows(4, 4)
    assert guard.tripped == "max_matches_per_doc"


# -- engine integration: error mode -----------------------------------------


def test_search_row_budget_error(engine):
    with pytest.raises(ResourceExhaustedError):
        engine.search("quick dog", limits=QueryLimits(max_rows=3))


def test_search_doc_cap_error(adversarial_engine):
    # The canonical plan joins the two position streams, producing
    # 60x60 match rows in the adversarial document (optimized plans may
    # legitimately aggregate before joining and never hit the cap).
    with pytest.raises(ResourceExhaustedError):
        adversarial_engine.search(
            "boom boom",
            optimize=False,
            limits=QueryLimits(max_matches_per_doc=50),
        )


def test_match_table_budget_error(adversarial_engine):
    with pytest.raises(ResourceExhaustedError):
        adversarial_engine.match_table(
            "boom boom boom boom", limits=QueryLimits(max_rows=10_000)
        )


def test_adversarial_deadline_terminates_promptly(adversarial_engine):
    """A 12.96M-row match table under a 100 ms deadline must abort within
    ~2x the deadline (generous wall-clock bound for CI jitter)."""
    begin = time.monotonic()
    with pytest.raises(QueryTimeoutError):
        adversarial_engine.match_table(
            "boom boom boom boom", limits=QueryLimits(deadline_ms=100)
        )
    assert time.monotonic() - begin < 1.0


def test_adversarial_search_deadline_terminates_promptly(adversarial_engine):
    begin = time.monotonic()
    with pytest.raises(QueryTimeoutError):
        adversarial_engine.search(
            "boom boom boom boom",
            optimize=False,
            limits=QueryLimits(deadline_ms=100),
        )
    assert time.monotonic() - begin < 1.0


# -- engine integration: graceful degradation -------------------------------


def test_partial_search_returns_correctly_ranked_prefix(engine):
    full = engine.search("quick dog")
    assert not full.degraded
    full_scores = {r.doc_id: r.score for r in full}

    partial = engine.search(
        "quick dog", limits=QueryLimits(max_rows=10, on_limit="partial")
    )
    assert partial.degraded
    assert len(partial.results) < len(full.results)
    # Every returned document carries its exact full-evaluation score...
    for r in partial:
        assert r.score == pytest.approx(full_scores[r.doc_id])
    # ...and the prefix is exactly ranked (desc score, asc doc id ties).
    keys = [(-r.score, r.doc_id) for r in partial]
    assert keys == sorted(keys)
    # Provenance: the tripped limit is recorded.
    assert "limit:max_rows" in partial.applied_optimizations
    assert partial.metrics.limit_tripped == "max_rows"
    assert partial.metrics.rows_charged > 0


def test_partial_deadline_search_is_flagged(adversarial_engine):
    outcome = adversarial_engine.search(
        "boom boom boom boom",
        optimize=False,
        limits=QueryLimits(deadline_ms=100, on_limit="partial"),
    )
    assert outcome.degraded
    assert outcome.metrics.limit_tripped == "deadline_ms"
    assert "limit:deadline_ms" in outcome.applied_optimizations


def test_unrestricted_search_is_never_degraded(engine):
    outcome = engine.search("quick dog", limits=QueryLimits(max_rows=10**9))
    assert not outcome.degraded
    assert outcome.metrics.limit_tripped is None
    assert outcome.metrics.rows_charged > 0


def test_partial_match_table_is_prefix_of_full_table(engine):
    full = engine.match_table("quick dog")
    assert full.truncated is None
    partial = engine.match_table(
        "quick dog", limits=QueryLimits(max_rows=8, on_limit="partial")
    )
    assert partial.truncated == "max_rows"
    assert len(partial.rows) < len(full.rows)
    assert partial.rows == full.rows[: len(partial.rows)]


def test_partial_matches_does_not_raise(adversarial_engine):
    out = adversarial_engine.matches(
        "boom boom",
        0,
        limit=3,
        limits=QueryLimits(max_rows=5, on_limit="partial"),
    )
    assert isinstance(out, list)


def test_rank_join_path_respects_limits(engine):
    full = engine.search("quick dog", scheme="anysum", top_k=3, use_rank_join=True)
    assert "rank-join-topk" in full.applied_optimizations
    with pytest.raises(ResourceExhaustedError):
        engine.search(
            "quick dog",
            scheme="anysum",
            top_k=3,
            use_rank_join=True,
            limits=QueryLimits(max_rows=2),
        )
    partial = engine.search(
        "quick dog",
        scheme="anysum",
        top_k=3,
        use_rank_join=True,
        limits=QueryLimits(max_rows=2, on_limit="partial"),
    )
    assert partial.degraded
    keys = [(-r.score, r.doc_id) for r in partial]
    assert keys == sorted(keys)


# -- limits on the public facade -------------------------------------------


def test_results_identical_with_generous_limits(engine):
    unlimited = engine.search("quick dog", scheme="sumbest")
    governed = engine.search(
        "quick dog",
        scheme="sumbest",
        limits=QueryLimits(deadline_ms=60_000, max_rows=10**9),
    )
    assert [(r.doc_id, r.score) for r in unlimited] == [
        (r.doc_id, r.score) for r in governed
    ]
