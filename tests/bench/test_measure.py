"""Measurement methodology tests."""

import pytest

from repro.bench.measure import paper_measure, reduction_percent


def test_paper_measure_runs_nine_times():
    calls = []
    paper_measure(lambda: calls.append(1))
    assert len(calls) == 9


def test_paper_measure_is_mean_of_middle_medians(monkeypatch):
    times = iter([0.0, 1, 3, 5, 7, 9, 11, 13, 100, 100])
    # perf_counter is called twice per run; feed deltas via a counter.
    ticks = iter([0, 1, 10, 12, 20, 23, 30, 34, 40, 45, 50, 56, 60, 67,
                  70, 78, 80, 89])
    import repro.bench.measure as m

    monkeypatch.setattr(m.time, "perf_counter", lambda: next(ticks))
    value = paper_measure(lambda: None)
    # Durations: 1..9 ascending; middle five are 3,4,5,6,7 -> mean 5.
    assert value == pytest.approx(5.0)


def test_reduction_percent():
    assert reduction_percent(2.0, 1.0) == pytest.approx(50.0)
    assert reduction_percent(2.0, 2.0) == 0.0
    assert reduction_percent(0.0, 1.0) == 0.0


def test_reduction_can_be_negative():
    assert reduction_percent(1.0, 2.0) == pytest.approx(-100.0)
