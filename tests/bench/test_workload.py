"""Benchmark workload sanity: the evaluation must measure real work."""

import pytest

from repro.bench.workload import (
    PAPER_QUERIES,
    RIGID_SUPPORTED,
    bench_fixture,
)
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.sa.registry import get_scheme


@pytest.fixture(scope="module")
def fx():
    return bench_fixture(num_docs=1200)


def test_eight_queries():
    assert sorted(PAPER_QUERIES) == [f"Q{i}" for i in range(10, 12)] + [
        f"Q{i}" for i in range(4, 10)
    ]
    assert len(PAPER_QUERIES) == 8


def test_rigid_supported_excludes_window_queries():
    assert set(RIGID_SUPPORTED) == set(PAPER_QUERIES) - {"Q8", "Q10"}


@pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
def test_every_query_has_answers(name, fx):
    """A benchmark query with an empty result measures nothing."""
    scheme = get_scheme("anysum")
    res = Optimizer(scheme, fx.index).optimize(fx.queries[name])
    results = execute(res.plan, make_runtime(fx.index, scheme, res.info))
    assert len(results) >= 1, name


def test_fixture_is_cached():
    a = bench_fixture(num_docs=1200)
    b = bench_fixture(num_docs=1200)
    assert a is b


def test_fixture_scales(fx):
    small = bench_fixture(num_docs=300)
    assert small.num_docs == 300
    assert fx.num_docs == 1200
    assert small.index.num_docs == 300
