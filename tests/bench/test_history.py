"""Benchmark history, baselines, and the ``repro bench`` regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.history import (
    append_history,
    bench_record,
    compare_to_baseline,
    latest_run,
    load_baseline,
    load_history,
    new_run_id,
    write_baseline,
)
from repro.cli import main
from repro.errors import GraftError


def record(name, wall_ms=10.0, rows=5, run_id="run-a"):
    return bench_record(
        name, run_id=run_id, wall_ms=wall_ms, rows=rows,
        params={"docs": 100},
    )


# -- records and history ---------------------------------------------------


def test_bench_record_stable_schema():
    rec = record("workload_Q4")
    assert rec["schema"] == 1
    assert rec["name"] == "workload_Q4"
    assert rec["run_id"] == "run-a"
    assert rec["wall_ms"] == 10.0
    assert rec["rows"] == 5
    assert rec["params"] == {"docs": 100}
    assert rec["ts"] > 0


def test_bench_record_requires_name_and_run_id():
    with pytest.raises(GraftError):
        bench_record("", run_id="r")
    with pytest.raises(GraftError):
        bench_record("x", run_id="")


def test_run_ids_are_unique():
    assert new_run_id() != new_run_id()


def test_append_and_load_history(tmp_path):
    path = tmp_path / "nested" / "history.jsonl"
    append_history(record("a"), path)  # single dict accepted
    append_history([record("b"), record("c", run_id="run-b")], path)
    history = load_history(path)
    assert [r["name"] for r in history] == ["a", "b", "c"]
    # One JSONL line per record, each parseable on its own.
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    for line in lines:
        json.loads(line)


def test_load_history_missing_file_is_empty(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []


def test_load_history_names_malformed_line(tmp_path):
    path = tmp_path / "history.jsonl"
    path.write_text('{"ok": 1}\n{torn\n')
    with pytest.raises(GraftError, match="history.jsonl:2"):
        load_history(path)


def test_latest_run_is_by_file_order(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history([record("a", run_id="r1"), record("b", run_id="r1")], path)
    append_history([record("a", run_id="r2", wall_ms=3.0)], path)
    run_id, records = latest_run(load_history(path))
    assert run_id == "r2"
    assert set(records) == {"a"}
    assert records["a"]["wall_ms"] == 3.0
    assert latest_run([]) == (None, {})


# -- baseline comparison ---------------------------------------------------


@pytest.fixture()
def baseline(tmp_path):
    records = {"q1": record("q1", wall_ms=10.0, rows=5),
               "q2": record("q2", wall_ms=20.0, rows=0)}
    path = tmp_path / "baseline.json"
    write_baseline(path, records, params={"docs": 100, "scheme": "sumbest"})
    return load_baseline(path)


def test_unchanged_run_passes(baseline):
    current = {"q1": record("q1", wall_ms=10.0, rows=5),
               "q2": record("q2", wall_ms=20.0, rows=0)}
    assert compare_to_baseline(current, baseline) == []


def test_within_tolerance_passes(baseline):
    current = {"q1": record("q1", wall_ms=14.0, rows=5),
               "q2": record("q2", wall_ms=25.0, rows=0)}
    assert compare_to_baseline(current, baseline, max_slowdown=1.5) == []


def test_synthetic_2x_slowdown_fails(baseline):
    current = {"q1": record("q1", wall_ms=20.0, rows=5),
               "q2": record("q2", wall_ms=20.0, rows=0)}
    regressions = compare_to_baseline(current, baseline, max_slowdown=1.5)
    assert [r.name for r in regressions] == ["q1"]
    assert regressions[0].field == "wall_ms"
    assert "1.50x" in regressions[0].message


def test_row_drift_fails_even_when_faster(baseline):
    current = {"q1": record("q1", wall_ms=1.0, rows=4),
               "q2": record("q2", wall_ms=1.0, rows=0)}
    regressions = compare_to_baseline(current, baseline)
    assert [(r.name, r.field) for r in regressions] == [("q1", "rows")]


def test_missing_benchmark_fails_extra_passes(baseline):
    current = {"q1": record("q1", wall_ms=10.0, rows=5),
               "brand_new": record("brand_new")}
    regressions = compare_to_baseline(current, baseline)
    assert [(r.name, r.field) for r in regressions] == [("q2", "missing")]


def test_max_slowdown_below_one_rejected(baseline):
    with pytest.raises(GraftError):
        compare_to_baseline({}, baseline, max_slowdown=0.9)


def test_load_baseline_errors(tmp_path):
    with pytest.raises(GraftError):
        load_baseline(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{torn")
    with pytest.raises(GraftError):
        load_baseline(bad)
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(GraftError, match="benchmarks"):
        load_baseline(empty)


# -- the CLI gate ----------------------------------------------------------


def bench_cli(tmp_path, *extra):
    return main([
        "bench",
        "--baseline", str(tmp_path / "baseline.json"),
        "--history", str(tmp_path / "history.jsonl"),
        "--docs", "120", "--repeats", "3",
        *extra,
    ])


def test_cli_run_appends_history_and_pins_baseline(tmp_path, capsys):
    assert bench_cli(tmp_path, "--write-baseline") == 0
    out = capsys.readouterr().out
    assert "baseline pinned" in out
    history = load_history(tmp_path / "history.jsonl")
    run_id, records = latest_run(history)
    assert run_id is not None
    # Q4..Q11 plus the sharded-throughput sweep (thread and process
    # legs, and the packed-decode leg), the plan-cache leg, the
    # end-to-end service-load leg, and the telemetry- and
    # span-export-overhead legs.
    assert len(records) == 18
    workload = [n for n in records if n.startswith("workload_Q")]
    assert len(workload) == 8
    assert {n for n in records if not n.startswith("workload_Q")} == {
        "parallel_qps_s1", "parallel_qps_s2", "parallel_qps_s4",
        "parallel_qps_s2_proc", "parallel_qps_s4_proc", "packed_decode",
        "plan_cache_repeat", "service_load", "telemetry_overhead",
        "span_export_overhead",
    }
    # The merge is exact: rows are shard-invariant across the sweep —
    # on both executors and the packed substrate.
    assert len({
        records[n]["rows"]
        for n in ("parallel_qps_s1", "parallel_qps_s2", "parallel_qps_s4",
                  "parallel_qps_s2_proc", "parallel_qps_s4_proc",
                  "packed_decode")
    }) == 1
    assert records["plan_cache_repeat"]["params"]["plan_cache"]["hits"] > 0
    baseline = load_baseline(tmp_path / "baseline.json")
    assert baseline["params"] == {"docs": 120, "scheme": "sumbest"}
    # Each run appends exactly one batch: a second run doubles the file.
    assert bench_cli(tmp_path) == 0
    capsys.readouterr()
    assert len(load_history(tmp_path / "history.jsonl")) == 36


def test_cli_no_parallel_skips_the_sweep(tmp_path, capsys):
    assert bench_cli(tmp_path, "--no-parallel") == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    assert len(records) == 11
    assert set(records) == {
        *(n for n in records if n.startswith("workload_Q")),
        "service_load", "telemetry_overhead", "span_export_overhead",
    }


def test_cli_no_service_skips_the_service_leg(tmp_path, capsys):
    assert bench_cli(tmp_path, "--no-service") == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    assert "service_load" not in records
    assert len(records) == 17


def test_cli_service_leg_records_latency_params(tmp_path, capsys):
    assert bench_cli(tmp_path) == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    leg = records["service_load"]
    assert leg["rows"] > 0
    for key in ("qps", "p50_ms", "p99_ms", "requests", "concurrency"):
        assert key in leg["params"], key
    assert leg["params"]["p50_ms"] <= leg["params"]["p99_ms"]


def test_cli_telemetry_overhead_leg_records_both_medians(tmp_path, capsys):
    assert bench_cli(tmp_path) == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    leg = records["telemetry_overhead"]
    params = leg["params"]
    assert params["off_ms"] > 0 and params["on_ms"] > 0
    assert "overhead_pct" in params
    # The gated wall is the telemetry-OFF median: the zero-overhead
    # contract, not the instrumented path.
    assert leg["wall_ms"] == pytest.approx(params["off_ms"], abs=0.001)
    assert params["rows_on"] == leg["rows"]  # telemetry never changes results


def test_cli_no_telemetry_overhead_skips_the_leg(tmp_path, capsys):
    assert bench_cli(tmp_path, "--no-telemetry-overhead") == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    assert "telemetry_overhead" not in records


def test_cli_span_overhead_leg_gates_the_export_off_path(tmp_path, capsys):
    assert bench_cli(tmp_path) == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    leg = records["span_export_overhead"]
    params = leg["params"]
    assert params["off_ms"] > 0 and params["on_ms"] > 0
    assert "overhead_pct" in params
    # The gated wall is the export-OFF median: telemetry active, no
    # exporter — the normal production path the baseline defends.
    assert leg["wall_ms"] == pytest.approx(params["off_ms"], abs=0.001)
    assert params["rows_on"] == leg["rows"]  # export never changes results
    assert params["traces_exported"] > 0  # the ON pass really exported


def test_cli_no_span_overhead_skips_the_leg(tmp_path, capsys):
    assert bench_cli(tmp_path, "--no-span-overhead") == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    assert "span_export_overhead" not in records
    assert "telemetry_overhead" in records


def test_cli_no_cache_runs_the_cache_leg_cold(tmp_path, capsys):
    assert bench_cli(tmp_path, "--no-cache") == 0
    capsys.readouterr()
    _, records = latest_run(load_history(tmp_path / "history.jsonl"))
    leg = records["plan_cache_repeat"]
    assert leg["params"]["cache"] is False
    assert leg["params"]["plan_cache"]["hits"] == 0
    assert leg["params"]["plan_cache"]["capacity"] == 0


def test_cli_check_passes_on_unchanged_run(tmp_path, capsys):
    assert bench_cli(tmp_path, "--write-baseline") == 0
    capsys.readouterr()
    # Generous tolerance: wall noise must not flake this test; rows are
    # deterministic and exact.
    assert bench_cli(tmp_path, "--check", "--max-slowdown", "50") == 0
    assert "gate OK" in capsys.readouterr().out


def test_cli_check_fails_on_synthetic_slowdown(tmp_path, capsys):
    assert bench_cli(tmp_path, "--write-baseline") == 0
    capsys.readouterr()
    path = tmp_path / "baseline.json"
    baseline = json.loads(path.read_text())
    for rec in baseline["benchmarks"].values():
        if rec["wall_ms"]:
            rec["wall_ms"] /= 1000.0  # pretend the past was 1000x faster
    path.write_text(json.dumps(baseline))
    assert bench_cli(tmp_path, "--check", "--max-slowdown", "2") == 1
    err = capsys.readouterr().err
    assert "REGRESSION" in err and "wall_ms" not in err  # message is prose


def test_cli_check_fails_on_row_drift(tmp_path, capsys):
    assert bench_cli(tmp_path, "--write-baseline") == 0
    capsys.readouterr()
    path = tmp_path / "baseline.json"
    baseline = json.loads(path.read_text())
    name = sorted(baseline["benchmarks"])[0]
    baseline["benchmarks"][name]["rows"] += 1
    path.write_text(json.dumps(baseline))
    assert bench_cli(tmp_path, "--check", "--max-slowdown", "50") == 1
    assert "result/work count changed" in capsys.readouterr().err


def test_cli_check_json_payload(tmp_path, capsys):
    assert bench_cli(tmp_path, "--write-baseline") == 0
    capsys.readouterr()
    assert bench_cli(
        tmp_path, "--check", "--max-slowdown", "50", "--json"
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked"] is True
    assert payload["regressions"] == []
    assert len(payload["records"]) == 18
    for rec in payload["records"].values():
        assert rec["schema"] == 1
        assert rec["run_id"] == payload["run_id"]
