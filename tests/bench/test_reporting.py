"""Report rendering tests."""

from repro.bench.reporting import render_bars, render_table


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(
            ["name", "value"],
            [["a", "1"], ["longer-name", "22"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        header, rule, row1, row2 = lines[1:]
        assert header.index("value") == row1.index("1")
        assert set(rule) <= {"-", " "}

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_wide_cells_stretch_columns(self):
        text = render_table(["h"], [["wider-than-header"]])
        assert "wider-than-header" in text


class TestRenderBars:
    def test_bars_scale_to_maximum(self):
        text = render_bars(
            {"g": {"small": 1.0, "big": 10.0}}, unit="ms", width=10
        )
        lines = [l for l in text.splitlines() if "#" in l]
        big = next(l for l in lines if "big" in l)
        small = next(l for l in lines if "small" in l)
        assert big.count("#") == 10
        assert small.count("#") == 1

    def test_zero_values_render_without_bars(self):
        text = render_bars({"g": {"x": 0.0}}, unit="%")
        assert "0.000" in text

    def test_groups_labelled(self):
        text = render_bars(
            {"Q4": {"a": 1.0}, "Q5": {"a": 2.0}}, unit="ms", title="F"
        )
        assert text.splitlines()[0] == "F"
        assert "Q4:" in text and "Q5:" in text

    def test_negative_values_clamped(self):
        text = render_bars({"g": {"x": -5.0, "y": 5.0}}, unit="%")
        bad = next(l for l in text.splitlines() if "x" in l)
        assert "#" not in bad
