"""Safe-range analysis and EMPTY-padding tests."""

import pytest

from repro.errors import UnsafeQueryError
from repro.mcalc.ast import And, Empty, Has, Not, Or, Pred
from repro.mcalc.safety import (
    bound_vars,
    check_safe,
    negated_vars,
    pad_disjunctions,
)


def test_has_binds_its_variable():
    assert bound_vars(Has("p", "a")) == {"p"}


def test_conjunction_unions_bindings():
    f = And((Has("p", "a"), Has("q", "b")))
    assert bound_vars(f) == {"p", "q"}


def test_disjunction_intersects_bindings():
    f = Or((Has("p", "a"), Has("q", "b")))
    assert bound_vars(f) == set()


def test_predicates_bind_nothing():
    assert bound_vars(Pred("DISTANCE", ("p", "q"), (1,))) == set()


def test_padding_reproduces_q3_shape():
    """Padding (foss | free^software) gives the paper's Psi^0/Psi^1."""
    f = Or((
        Has("p4", "foss"),
        And((Has("p2", "free"), Has("p3", "software"))),
    ))
    padded = pad_disjunctions(f)
    assert isinstance(padded, Or)
    left, right = padded.operands
    # foss branch gains EMPTY(p2) and EMPTY(p3).
    assert bound_vars(left) == {"p2", "p3", "p4"}
    assert Empty("p2") in left.operands and Empty("p3") in left.operands
    # phrase branch gains EMPTY(p4).
    assert bound_vars(right) == {"p2", "p3", "p4"}
    assert Empty("p4") in right.operands


def test_padding_is_recursive():
    inner = Or((Has("a", "x"), Has("b", "y")))
    outer = Or((inner, Has("c", "z")))
    padded = pad_disjunctions(outer)
    assert bound_vars(padded) == {"a", "b", "c"}


def test_padded_disjunction_is_safe():
    f = pad_disjunctions(Or((Has("p", "a"), Has("q", "b"))))
    check_safe(f, ("p", "q"))


def test_unpadded_disjunction_is_unsafe():
    f = Or((Has("p", "a"), Has("q", "b")))
    with pytest.raises(UnsafeQueryError):
        check_safe(f, ("p", "q"))


def test_negated_output_variable_is_unsafe():
    f = And((Has("p", "a"), Not(Has("q", "b"))))
    assert negated_vars(f) == {"q"}
    with pytest.raises(UnsafeQueryError):
        check_safe(f, ("p", "q"))


def test_negation_with_quantified_vars_is_safe():
    f = And((Has("p", "a"), Not(Has("q", "b"))))
    check_safe(f, ("p",))


def test_predicate_on_unbound_variable_is_unsafe():
    f = And((Has("p", "a"), Pred("DISTANCE", ("p", "z"), (1,))))
    with pytest.raises(UnsafeQueryError):
        check_safe(f, ("p",))
