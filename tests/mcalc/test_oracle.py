"""Brute-force oracle tests, including the Figure 2 golden table."""

from repro.corpus.collection import DocumentCollection
from repro.corpus.wine import wine_collection
from repro.mcalc.oracle import document_matches, match_table
from repro.mcalc.parser import parse_query


def test_figure_2_match_table():
    """Q3 over d_w yields exactly the four rows of Figure 2."""
    q = parse_query('(windows emulator)WINDOW[50] (foss | "free software")')
    table = match_table(q, wine_collection())
    # Columns: p0=windows p1=emulator p2=foss p3=free p4=software.
    assert table.rows == [
        (0, 27, 64, 179, None, None),
        (0, 27, 64, None, 3, 4),
        (0, 42, 64, 179, None, None),
        (0, 42, 64, None, 3, 4),
    ]


def test_q1_single_match():
    """Section 2: d_w has exactly one match to Q1 (emulator, free
    immediately before software) at offsets (64, 3, 4)."""
    q = parse_query('emulator "free software"')
    col = wine_collection()
    rows = document_matches(q, col[0])
    assert rows == [(0, 64, 3, 4)]


def test_without_distance_four_matches():
    """Section 2: without the adjacency clause Q1 would have four matches,
    one per position of 'software'."""
    q = parse_query("emulator free software")
    col = wine_collection()
    rows = document_matches(q, col[0])
    assert [r[3] for r in rows] == [4, 32, 180, 189]


def test_conjunction_is_cross_product():
    col = DocumentCollection()
    col.add_text("a b a b")
    q = parse_query("a b")
    rows = document_matches(q, col[0])
    assert len(rows) == 4  # 2 x 2 positions


def test_no_match_for_missing_keyword():
    col = DocumentCollection()
    col.add_text("a b c")
    assert document_matches(parse_query("a z"), col[0]) == []


def test_disjunction_rows_are_branch_exclusive():
    col = DocumentCollection()
    col.add_text("x y")
    rows = document_matches(parse_query("x | y"), col[0])
    assert (0, 0, None) in rows
    assert (0, None, 1) in rows
    assert len(rows) == 2


def test_negation_excludes_documents():
    col = DocumentCollection()
    col.add_text("fox terrier")
    col.add_text("fox hound")
    q = parse_query("fox -terrier")
    assert document_matches(q, col[0]) == []
    assert document_matches(q, col[1]) == [(1, 0)]


def test_rows_sorted_lexicographically_empty_last():
    col = DocumentCollection()
    col.add_text("x y x")
    rows = document_matches(parse_query("x | y"), col[0])
    # Real positions ascending before EMPTY within each column.
    assert rows == [(0, 0, None), (0, 2, None), (0, None, 1)]


def test_match_table_columns_follow_query(tiny_collection):
    q = parse_query("quick fox")
    table = match_table(q, tiny_collection)
    assert table.columns == ("p0", "p1")
    assert table.documents() == [0, 1, 3, 4, 6]
