"""SAMESENTENCE with real indexed sentence boundaries (Section 8's
suggested extension)."""

import pytest

from repro.corpus.analyzer import SentenceAnalyzer
from repro.corpus.collection import DocumentCollection
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.index.builder import build_index
from repro.mcalc.oracle import document_matches
from repro.mcalc.parser import parse_query
from repro.mcalc.predicates import get_predicate
from repro.sa.reference import rank_with_oracle
from repro.sa.context import IndexScoringContext
from repro.sa.registry import get_scheme

from tests.conftest import assert_same_ranking


@pytest.fixture
def sentence_collection():
    col = DocumentCollection(analyzer=SentenceAnalyzer())
    col.add_text("the quick fox runs. the dog sleeps in the sun.")
    col.add_text("the quick dog barks at the fox! nothing else happens.")
    col.add_text("quick quick quick. fox fox. dog.")
    return col


class TestAnalyzer:
    def test_sentence_starts_recorded(self, sentence_collection):
        doc = sentence_collection[0]
        assert doc.sentence_starts == (0, 4)
        assert doc.tokens[:4] == ("the", "quick", "fox", "runs")

    def test_empty_sentences_skipped(self):
        analyzer = SentenceAnalyzer()
        analyzed = analyzer.analyze("one. ... two!")
        assert analyzed.sentence_starts == (0, 1)

    def test_sentence_of(self, sentence_collection):
        doc = sentence_collection[0]
        assert doc.sentence_of(0) == 0
        assert doc.sentence_of(3) == 0
        assert doc.sentence_of(4) == 1
        assert doc.sentence_of(9) == 1

    def test_document_without_boundaries_is_one_sentence(self):
        from repro.corpus.document import Document

        doc = Document(0, ("a", "b"))
        assert doc.sentence_of(1) == 0


class TestIndexStorage:
    def test_index_records_sentence_starts(self, sentence_collection):
        index = build_index(sentence_collection)
        assert index.sentence_starts_of(0) == (0, 4)
        assert index.sentence_starts_of(99) == ()

    def test_io_round_trips_sentence_starts(self, sentence_collection, tmp_path):
        from repro.index.io import load_index, save_index

        index = build_index(sentence_collection)
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.sentence_starts == index.sentence_starts


class TestPredicate:
    def test_structural_evaluation_uses_boundaries(self):
        impl = get_predicate("SAMESENTENCE")
        # Positions 2 and 5 with a boundary at 4: different sentences.
        assert not impl.holds([2, 5], (), sentence_starts=(0, 4))
        assert impl.holds([2, 3], (), sentence_starts=(0, 4))

    def test_fallback_without_boundaries(self):
        impl = get_predicate("SAMESENTENCE")
        assert impl.holds([2, 5], ())          # same fixed-span bucket
        assert not impl.holds([19, 21], ())    # straddles bucket boundary

    def test_oracle_consults_document_boundaries(self, sentence_collection):
        q = parse_query("(quick fox)SAMESENTENCE")
        # Doc 0: quick@1 fox@2 in sentence 0 -> match.
        assert document_matches(q, sentence_collection[0]) == [(0, 1, 2)]
        # Doc 1: quick@1 (sentence 0), fox@6 (sentence 0 ends at 7?) --
        # 'the quick dog barks at the fox' is one sentence: match.
        assert document_matches(q, sentence_collection[1]) == [(1, 1, 6)]
        # Doc 2: 'quick's in sentence 0, 'fox's in sentence 1 -> no match.
        assert document_matches(q, sentence_collection[2]) == []

    def test_engine_matches_oracle(self, sentence_collection):
        index = build_index(sentence_collection)
        ctx = IndexScoringContext(index)
        scheme = get_scheme("meansum")
        q = parse_query("(quick fox)SAMESENTENCE")
        res = Optimizer(scheme, index).optimize(q)
        got = execute(res.plan, make_runtime(index, scheme, res.info, ctx))
        want = rank_with_oracle(scheme, ctx, q, sentence_collection)
        assert_same_ranking(got, want)
        assert {d for d, _ in got} == {0, 1}

    def test_boundaries_change_results_vs_fallback(self, sentence_collection):
        """The same query gives different answers with real boundaries
        than under the fixed-span fallback — the structure matters."""
        index = build_index(sentence_collection)
        scheme = get_scheme("sumbest")
        q = parse_query("(fox dog)SAMESENTENCE")
        res = Optimizer(scheme, index).optimize(q)
        got = execute(res.plan, make_runtime(index, scheme, res.info))
        # Real boundaries: only doc 1 ('the quick dog barks at the fox')
        # holds fox and dog in one sentence.  The 20-token fallback would
        # have matched all three documents.
        assert [d for d, _ in got] == [1]
