"""Shorthand query parser tests (the Section-8 syntax)."""

import pytest

from repro.errors import (
    PredicateArityError,
    QuerySyntaxError,
    UnknownPredicateError,
)
from repro.mcalc.ast import And, Has, Not, Or, Pred
from repro.mcalc.parser import parse_query
from repro.bench.workload import PAPER_QUERIES


class TestBasics:
    def test_single_keyword(self):
        q = parse_query("fox")
        assert q.free_vars == ("p0",)
        assert q.var_keywords == {"p0": "fox"}
        assert isinstance(q.formula, Has)

    def test_conjunction_by_juxtaposition(self):
        q = parse_query("quick brown fox")
        assert q.free_vars == ("p0", "p1", "p2")
        assert q.keywords == ("quick", "brown", "fox")
        assert isinstance(q.formula, And)

    def test_keywords_are_lowercased(self):
        q = parse_query("Quick FOX")
        assert q.keywords == ("quick", "fox")

    def test_variables_in_appearance_order(self):
        q = parse_query('alpha "beta gamma" delta')
        assert q.keywords == ("alpha", "beta", "gamma", "delta")


class TestPhrases:
    def test_phrase_becomes_distance_chain(self):
        q = parse_query('"orange county convention center"')
        preds = q.predicates()
        assert [p.name for p in preds] == ["DISTANCE"] * 3
        assert all(p.constants == (1,) for p in preds)
        assert [p.vars for p in preds] == [
            ("p0", "p1"), ("p1", "p2"), ("p2", "p3"),
        ]

    def test_empty_phrase_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('""')

    def test_unterminated_phrase_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('"quick fox')


class TestDisjunction:
    def test_top_level_disjunction(self):
        q = parse_query("fox | dog")
        assert isinstance(q.source_formula, Or)

    def test_branch_variables_padded(self):
        q = parse_query("fox | dog")
        # After padding, both free vars are bound on both branches.
        from repro.mcalc.safety import bound_vars
        for branch in q.formula.operands:
            assert bound_vars(branch) == {"p0", "p1"}

    def test_grouped_disjunction(self):
        q = parse_query("quick (fox | dog)")
        assert q.keywords == ("quick", "fox", "dog")


class TestPredicateSuffix:
    def test_window_on_group(self):
        q = parse_query("(windows emulator)WINDOW[50]")
        (pred,) = q.predicates()
        assert pred.name == "WINDOW"
        assert pred.vars == ("p0", "p1")
        assert pred.constants == (50,)

    def test_proximity_with_trailing_term(self):
        q = parse_query("(free wireless internet)PROXIMITY[10] service")
        (pred,) = q.predicates()
        assert pred.vars == ("p0", "p1", "p2")
        assert q.keywords[-1] == "service"

    def test_order_predicate_without_constants(self):
        q = parse_query("(quick fox)ORDER")
        (pred,) = q.predicates()
        assert pred.name == "ORDER" and pred.constants == ()

    def test_predicate_over_nested_disjunctions(self):
        q = parse_query("((fishing | hunting) (rules | regulations))WINDOW[20]")
        (pred,) = q.predicates()
        assert pred.name == "WINDOW"
        assert len(pred.vars) == 4

    def test_lowercase_name_is_a_keyword_not_a_predicate(self):
        q = parse_query("(quick fox) window")
        assert q.predicates() == []
        assert q.keywords == ("quick", "fox", "window")

    def test_unknown_predicate_rejected(self):
        with pytest.raises(UnknownPredicateError):
            parse_query("(a b)NOSUCH[3]")

    def test_wrong_arity_rejected(self):
        with pytest.raises(PredicateArityError):
            parse_query("(a)WINDOW[5] b")


class TestNegation:
    def test_negated_keyword_excluded_from_free_vars(self):
        q = parse_query("fox -terrier")
        assert q.keywords == ("fox",)
        assert any(isinstance(n, Not) for n in q.formula.walk())


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(quick fox")

    def test_stray_character(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("quick & fox")

    def test_empty_query(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")

    def test_empty_group(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("()")

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as err:
            parse_query("quick ^fox")
        assert err.value.position == 6


class TestPaperQueries:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_all_paper_queries_parse(self, name):
        q = parse_query(PAPER_QUERIES[name])
        assert q.free_vars

    def test_q8_structure_matches_q3(self):
        """Q8 is the shorthand translation of MCalc query Q3."""
        q = parse_query(PAPER_QUERIES["Q8"])
        assert q.keywords == ("windows", "emulator", "foss", "free", "software")
        names = sorted(p.name for p in q.predicates())
        assert names == ["DISTANCE", "WINDOW"]

    def test_free_keyword_detection(self):
        """Q8/Q10 have one free keyword; Q7/Q11 have none (Section 8)."""
        free = {
            name: [
                parse_query(text).var_keywords[v]
                for v in parse_query(text).free_keyword_vars()
            ]
            for name, text in PAPER_QUERIES.items()
        }
        assert free["Q4"] == ["san", "francisco", "fault", "line"]
        assert len(free["Q5"]) == 7
        assert free["Q6"] == ["orlando"]
        assert free["Q7"] == []
        assert free["Q8"] == ["foss"]
        assert free["Q9"] == ["service"]
        assert free["Q10"] == ["arizona"]
        assert free["Q11"] == []
