"""Programmatic query builder tests: builder == parser."""

import pytest

from repro.errors import PlanError, UnsafeQueryError
from repro.mcalc.builder import (
    all_of,
    any_of,
    constrained,
    exclude,
    ordered,
    phrase,
    proximity,
    term,
    window,
)
from repro.mcalc.parser import parse_query


def assert_equivalent(built, text):
    """Built query must equal the parsed query structurally."""
    parsed = parse_query(text)
    assert built.free_vars == parsed.free_vars
    assert built.var_keywords == parsed.var_keywords
    assert str(built.formula) == str(parsed.formula)
    assert str(built.source_formula) == str(parsed.source_formula)


def test_single_term():
    assert_equivalent(term("Fox").build(), "fox")


def test_conjunction():
    assert_equivalent(all_of(term("a"), term("b"), term("c")).build(), "a b c")


def test_phrase():
    assert_equivalent(phrase("quick", "fox").build(), '"quick fox"')


def test_disjunction_is_padded():
    assert_equivalent(any_of(term("a"), term("b")).build(), "a | b")


def test_q3_shape():
    built = all_of(
        window(term("windows"), term("emulator"), size=50),
        any_of(term("foss"), phrase("free", "software")),
    ).build()
    assert_equivalent(
        built, '(windows emulator)WINDOW[50] (foss | "free software")'
    )


def test_proximity_and_order():
    assert_equivalent(
        proximity(term("a"), term("b"), distance=4).build(),
        "(a b)PROXIMITY[4]",
    )
    assert_equivalent(ordered(term("a"), term("b")).build(), "(a b)ORDER")


def test_operators_sugar():
    built = (term("a") & (term("b") | term("c"))).build()
    assert_equivalent(built, "a (b | c)")


def test_exclude():
    assert_equivalent(all_of(term("fox"), exclude(term("terrier"))).build(),
                      "fox -terrier")


def test_predicate_over_disjunction():
    built = constrained(
        all_of(any_of(term("a"), term("b")), any_of(term("c"), term("d"))),
        "WINDOW", 20,
    ).build()
    assert_equivalent(built, "((a | b) (c | d))WINDOW[20]")


def test_arity_checked_at_build():
    from repro.errors import PredicateArityError

    with pytest.raises(PredicateArityError):
        constrained(term("a"), "WINDOW", 5).build()


def test_window_requires_size():
    with pytest.raises(PlanError):
        window(term("a"), term("b"))


def test_unsafe_all_negative_rejected():
    with pytest.raises((UnsafeQueryError, PlanError)):
        exclude(term("a")).build()


def test_built_queries_run(tiny_index, tiny_collection, tiny_ctx):
    from repro.exec.engine import execute, make_runtime
    from repro.graft.optimizer import Optimizer
    from repro.sa.reference import rank_with_oracle
    from repro.sa.registry import get_scheme

    from tests.conftest import assert_same_ranking

    built = all_of(
        term("quick"),
        any_of(term("fox"), phrase("lazy", "dog")),
    ).build()
    scheme = get_scheme("meansum")
    res = Optimizer(scheme, tiny_index).optimize(built)
    got = execute(res.plan, make_runtime(tiny_index, scheme, res.info, tiny_ctx))
    want = rank_with_oracle(scheme, tiny_ctx, built, tiny_collection)
    assert_same_ranking(got, want)


def test_empty_constructors_rejected():
    with pytest.raises(PlanError):
        all_of()
    with pytest.raises(PlanError):
        any_of()
    with pytest.raises(PlanError):
        phrase()
