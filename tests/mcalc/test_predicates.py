"""Full-text predicate semantics, including the empty-position rule."""

import pytest

from repro.errors import PredicateArityError, UnknownPredicateError
from repro.mcalc.predicates import (
    PredicateImpl,
    get_predicate,
    register_predicate,
    registered_predicates,
)


def holds(name, positions, constants=()):
    return get_predicate(name).holds(positions, tuple(constants))


class TestDistance:
    def test_exact_distance_holds(self):
        assert holds("DISTANCE", [3, 4], [1])
        assert holds("DISTANCE", [10, 15], [5])

    def test_wrong_distance_fails(self):
        assert not holds("DISTANCE", [3, 5], [1])

    def test_distance_is_directional(self):
        assert not holds("DISTANCE", [4, 3], [1])

    def test_empty_argument_vacuously_true(self):
        assert holds("DISTANCE", [None, 5], [1])
        assert holds("DISTANCE", [3, None], [1])
        assert holds("DISTANCE", [None, None], [1])


class TestProximity:
    def test_within_distance(self):
        assert holds("PROXIMITY", [10, 13], [3])

    def test_beyond_distance(self):
        assert not holds("PROXIMITY", [10, 14], [3])

    def test_order_agnostic(self):
        assert holds("PROXIMITY", [13, 10], [3])

    def test_nary_uses_span(self):
        assert holds("PROXIMITY", [5, 8, 10], [5])
        assert not holds("PROXIMITY", [5, 8, 11], [5])

    def test_empty_arguments_ignored(self):
        assert holds("PROXIMITY", [5, None, 8], [3])
        assert not holds("PROXIMITY", [5, None, 9], [3])


class TestWindow:
    def test_span_strictly_less_than_window(self):
        # A window of n tokens covers a span of at most n - 1.
        assert holds("WINDOW", [0, 49], [50])
        assert not holds("WINDOW", [0, 50], [50])

    def test_figure_2_example(self):
        """The WINDOW(50) of Q3: emulator@64 with windows@27/42 pass,
        windows@144/187 fail."""
        assert holds("WINDOW", [27, 64], [50])
        assert holds("WINDOW", [42, 64], [50])
        assert not holds("WINDOW", [144, 64], [50])
        assert not holds("WINDOW", [187, 64], [50])


class TestOrder:
    def test_strictly_increasing(self):
        assert holds("ORDER", [1, 5, 9])
        assert not holds("ORDER", [1, 5, 5])
        assert not holds("ORDER", [5, 1])

    def test_empties_skipped(self):
        assert holds("ORDER", [1, None, 9])


class TestSameSentence:
    def test_same_bucket(self):
        assert holds("SAMESENTENCE", [21, 39])

    def test_different_bucket(self):
        assert not holds("SAMESENTENCE", [19, 21])


class TestRegistry:
    def test_unknown_predicate(self):
        with pytest.raises(UnknownPredicateError):
            get_predicate("NOPE")

    def test_arity_check_vars(self):
        with pytest.raises(PredicateArityError):
            get_predicate("DISTANCE").check_arity(3, 1)

    def test_arity_check_constants(self):
        with pytest.raises(PredicateArityError):
            get_predicate("DISTANCE").check_arity(2, 0)

    def test_plugin_registration(self):
        """GRAFT 'can support as plug-ins virtually any predicate on
        positions' (Section 8)."""
        impl = PredicateImpl(
            "SAMEPARITY",
            lambda p, c: (p[0] - p[1]) % 2 == 0,
            2,
            2,
            0,
            forward_class=False,
        )
        register_predicate(impl)
        assert holds("SAMEPARITY", [2, 4])
        assert not holds("SAMEPARITY", [2, 5])
        assert "SAMEPARITY" in registered_predicates()

    def test_builtins_are_forward_class(self):
        for name in ("DISTANCE", "PROXIMITY", "WINDOW", "ORDER"):
            assert get_predicate(name).forward_class
