"""Unparser round-trip tests, including a hypothesis-generated suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workload import PAPER_QUERIES
from repro.mcalc.parser import parse_query
from repro.mcalc.unparse import unparse


def assert_round_trip(text):
    q = parse_query(text)
    again = parse_query(unparse(q))
    assert str(again.source_formula) == str(q.source_formula)
    assert again.free_vars == q.free_vars
    assert again.var_keywords == q.var_keywords


@pytest.mark.parametrize("text", [
    "fox",
    "quick fox",
    '"quick brown fox"',
    "a | b | c",
    "a (b | c)",
    "(a b)WINDOW[50]",
    "(a b c)PROXIMITY[10] d",
    "(a b)ORDER",
    'x (y | "a b")',
    "fox -terrier",
    "a -(b c)",
    "((a | b) (c | d))WINDOW[20]",
])
def test_round_trips(text):
    assert_round_trip(text)


@pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
def test_paper_queries_round_trip(name):
    assert_round_trip(PAPER_QUERIES[name])


WORDS = st.sampled_from(["aa", "bb", "cc", "dd"])


@st.composite
def random_shorthand(draw):
    items = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(
            ["term", "phrase", "disj", "window", "neg"]
        ))
        if kind == "term":
            items.append(draw(WORDS))
        elif kind == "phrase":
            items.append(f'"{draw(WORDS)} {draw(WORDS)}"')
        elif kind == "disj":
            items.append(f"({draw(WORDS)} | {draw(WORDS)})")
        elif kind == "window":
            n = draw(st.integers(min_value=2, max_value=30))
            items.append(f"({draw(WORDS)} {draw(WORDS)})WINDOW[{n}]")
        else:
            items.append(f"-{draw(WORDS)}")
    if all(i.startswith("-") for i in items):
        items.append(draw(WORDS))
    return " ".join(items)


@settings(max_examples=100, deadline=None)
@given(text=random_shorthand())
def test_random_queries_round_trip(text):
    assert_round_trip(text)
