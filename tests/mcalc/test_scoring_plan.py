"""Scoring-plan (Phi) derivation tests (Section 4.2.1)."""

import pytest

from repro.errors import PlanError
from repro.mcalc.parser import parse_query
from repro.mcalc.scoring_plan import (
    PhiConj,
    PhiDisj,
    PhiVar,
    derive_scoring_plan,
    fold_phi,
)


def phi_of(text):
    return derive_scoring_plan(parse_query(text))


def test_single_keyword():
    assert phi_of("fox") == PhiVar("p0")


def test_conjunction():
    assert phi_of("a b") == PhiConj((PhiVar("p0"), PhiVar("p1")))


def test_disjunction():
    assert phi_of("a | b") == PhiDisj((PhiVar("p0"), PhiVar("p1")))


def test_q3_scoring_plan_shape():
    """Example 4: Phi(Q3) = (windows (x) emulator) (x) (foss (+) [free (x) software])."""
    phi = phi_of('(windows emulator)WINDOW[50] (foss | "free software")')
    assert phi == PhiConj((
        PhiConj((PhiVar("p0"), PhiVar("p1"))),
        PhiDisj((PhiVar("p2"), PhiConj((PhiVar("p3"), PhiVar("p4"))))),
    ))


def test_predicates_are_erased():
    phi = phi_of("(a b)PROXIMITY[5]")
    assert phi == PhiConj((PhiVar("p0"), PhiVar("p1")))


def test_negations_are_erased():
    phi = phi_of("a -b")
    assert phi == PhiVar("p0")


def test_dangling_connectives_collapse():
    # The group contributes a single variable after erasures.
    phi = phi_of("(a -b) c")
    assert phi == PhiConj((PhiVar("p0"), PhiVar("p2")))


def test_fold_preserves_written_order():
    phi = phi_of("a b c")
    trace = []

    def conj(left, right):
        trace.append((left, right))
        return f"({left}*{right})"

    out = fold_phi(phi, lambda v: v, conj, lambda a, b: a)
    assert out == "((p0*p1)*p2)"  # left fold
    assert trace == [("p0", "p1"), ("(p0*p1)", "p2")]


def test_fold_mixed_tree():
    phi = phi_of("a (b | c)")
    out = fold_phi(
        phi,
        lambda v: v,
        lambda l, r: f"({l}&{r})",
        lambda l, r: f"({l}|{r})",
    )
    assert out == "(p0&(p1|p2))"


def test_query_without_scorable_keywords_rejected():
    from repro.mcalc.ast import Not, Has, And, Query

    with pytest.raises(PlanError):
        # Construct directly: all-negative queries cannot be parsed safely
        # anyway, so bypass the parser.
        derive_scoring_plan(
            Query(
                formula=Has("p0", "a"),
                free_vars=(),
                var_keywords={"p0": "a"},
                source_formula=Not(Has("p0", "a")),
            )
        )


def test_phi_variables_iteration():
    phi = phi_of('a (b | "c d")')
    assert list(phi.variables()) == ["p0", "p1", "p2", "p3"]
