"""Seekable scan tests."""

from repro.index.scan import DocumentScan, PositionScan


def test_position_scan_iterates_all_entries(tiny_index):
    scan = PositionScan(tiny_index, "fox")
    docs = []
    while True:
        entry = scan.next_entry()
        if entry is None:
            break
        docs.append(entry[0])
    assert docs == sorted(docs)
    assert len(docs) == tiny_index.document_frequency("fox")


def test_position_scan_counts_work(tiny_index):
    scan = PositionScan(tiny_index, "fox")
    while scan.next_entry() is not None:
        pass
    assert scan.positions_touched == tiny_index.total_positions("fox")
    assert scan.docs_touched == tiny_index.document_frequency("fox")


def test_position_scan_seek_skips(tiny_index):
    scan = PositionScan(tiny_index, "fox")
    scan.seek(3)
    entry = scan.next_entry()
    assert entry is not None and entry[0] >= 3


def test_seek_never_goes_backward(tiny_index):
    scan = PositionScan(tiny_index, "fox")
    first = scan.next_entry()
    scan.seek(0)  # earlier than current: must be a no-op
    second = scan.next_entry()
    assert second[0] > first[0]


def test_position_scan_exhaustion(tiny_index):
    scan = PositionScan(tiny_index, "fox")
    scan.seek(10**9)
    assert scan.next_entry() is None
    assert scan.current_doc() is None


def test_document_scan_counts(tiny_index):
    scan = DocumentScan(tiny_index, "dog")
    total = 0
    while True:
        entry = scan.next_entry()
        if entry is None:
            break
        doc, count = entry
        assert count == tiny_index.term_frequency(doc, "dog")
        total += 1
    assert total == tiny_index.document_frequency("dog")


def test_document_scan_unknown_term(tiny_index):
    scan = DocumentScan(tiny_index, "qzxv")
    assert scan.next_entry() is None


def test_document_scan_seek(tiny_index):
    scan = DocumentScan(tiny_index, "dog")
    scan.seek(4)
    entry = scan.next_entry()
    assert entry is not None and entry[0] >= 4
