"""Position postings tests."""

import numpy as np
import pytest

from repro.index.postings import PositionPostings


@pytest.fixture
def postings():
    return PositionPostings.from_dict({5: [9, 2], 1: [3], 8: [0, 4, 7]})


def test_doc_ids_sorted(postings):
    assert list(postings.doc_ids) == [1, 5, 8]


def test_offsets_sorted_per_doc(postings):
    assert postings.positions_in(5) == (2, 9)


def test_document_frequency(postings):
    assert postings.document_frequency == 3


def test_total_positions(postings):
    assert postings.total_positions == 6


def test_positions_in_absent_doc_is_empty(postings):
    assert postings.positions_in(4) == ()
    assert postings.positions_in(100) == ()


def test_term_frequency(postings):
    assert postings.term_frequency(8) == 3
    assert postings.term_frequency(2) == 0


def test_seek_index(postings):
    assert postings.entry_index_at_or_after(0) == 0
    assert postings.entry_index_at_or_after(1) == 0
    assert postings.entry_index_at_or_after(2) == 1
    assert postings.entry_index_at_or_after(9) == 3


def test_empty_postings():
    empty = PositionPostings.empty()
    assert empty.document_frequency == 0
    assert empty.total_positions == 0
    assert empty.positions_in(0) == ()


def test_misaligned_construction_rejected():
    with pytest.raises(ValueError):
        PositionPostings(np.asarray([1, 2], dtype=np.int64), [(1,)])
