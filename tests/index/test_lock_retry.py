"""Writer-lock retry/backoff and the stale-break race.

The dangerous interleaving: two openers both observe a stale (dead-pid)
``LOCK``, both break it, and the second breaker's removal deletes the
*first breaker's freshly created* lock — two live writers.  The break
goes through an atomic rename claim, so these tests hammer N
simultaneous breakers and assert the exactly-one-holder invariant.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.api import SearchEngine
from repro.errors import StoreLockedError
from repro.index.store import LOCK_NAME
from repro.index.store.lock import StoreLock


def write_stale_lock(root) -> None:
    """A lockfile naming a dead pid on this host."""
    root.mkdir(parents=True, exist_ok=True)
    # Spawn-and-reap: the child's pid is guaranteed dead and ours.
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    (root / LOCK_NAME).write_text(f"{pid}@{os.uname().nodename}")


def test_acquire_fails_fast_by_default(tmp_path):
    first = StoreLock(tmp_path).acquire()
    try:
        with pytest.raises(StoreLockedError):
            StoreLock(tmp_path).acquire()
    finally:
        first.release()


def test_retry_waits_out_a_releasing_holder(tmp_path):
    first = StoreLock(tmp_path).acquire()
    sleeps: list[float] = []

    def sleep(seconds: float) -> None:
        sleeps.append(seconds)
        if len(sleeps) == 2:
            first.release()  # frees the lock mid-retry

    second = StoreLock(tmp_path).acquire(
        retries=5, backoff_s=0.01, sleep=sleep
    )
    assert second.held
    assert len(sleeps) >= 2
    # Linear backoff: each round's base sleep grows.
    assert sleeps[1] > sleeps[0] - 0.01
    second.release()


def test_retries_exhausted_still_raises_with_holder(tmp_path):
    first = StoreLock(tmp_path).acquire()
    try:
        sleeps: list[float] = []
        with pytest.raises(StoreLockedError) as info:
            StoreLock(tmp_path).acquire(
                retries=3, backoff_s=0.001, sleep=sleeps.append
            )
        assert len(sleeps) == 3
        assert str(os.getpid()) in str(info.value)
    finally:
        first.release()


def test_stale_lock_is_broken_and_acquired(tmp_path):
    write_stale_lock(tmp_path)
    lock = StoreLock(tmp_path).acquire()
    assert lock.held
    assert str(os.getpid()) in (tmp_path / LOCK_NAME).read_text()
    lock.release()
    assert not (tmp_path / LOCK_NAME).exists()
    # No claim residue left behind.
    assert not list(tmp_path.glob(f"{LOCK_NAME}.break.*"))


def test_live_lock_is_never_broken(tmp_path):
    first = StoreLock(tmp_path).acquire()
    try:
        with pytest.raises(StoreLockedError):
            StoreLock(tmp_path).acquire(retries=2, backoff_s=0.001,
                                        sleep=lambda s: None)
        # The holder's lockfile is intact, not renamed away.
        assert str(os.getpid()) in (tmp_path / LOCK_NAME).read_text()
        assert first.held
    finally:
        first.release()


@pytest.mark.parametrize("openers", [2, 8])
def test_simultaneous_stale_breakers_yield_exactly_one_holder(
    tmp_path, openers
):
    """N threads race to break one stale lock; exactly one must win and
    the winner's fresh lockfile must never be deleted by a loser."""
    for round_number in range(10):
        root = tmp_path / f"round{round_number}"
        write_stale_lock(root)
        barrier = threading.Barrier(openers)
        results: list[StoreLock | BaseException] = [None] * openers

        def race(slot: int) -> None:
            lock = StoreLock(root)
            barrier.wait()
            try:
                results[slot] = lock.acquire()
            except BaseException as exc:  # noqa: BLE001
                results[slot] = exc

        threads = [
            threading.Thread(target=race, args=(i,)) for i in range(openers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        winners = [r for r in results if isinstance(r, StoreLock)]
        losers = [r for r in results if isinstance(r, BaseException)]
        assert len(winners) == 1, (
            f"round {round_number}: {len(winners)} holders "
            f"(the unlink race fired)"
        )
        assert all(isinstance(e, StoreLockedError) for e in losers)
        # The winner's lock survived every loser's break attempt.
        assert (root / LOCK_NAME).exists()
        assert str(os.getpid()) in (root / LOCK_NAME).read_text()
        winners[0].release()


def test_engine_open_breaks_stale_lock_end_to_end(tmp_path):
    root = tmp_path / "store"
    with SearchEngine.open(root) as engine:
        engine.add("a document before the crash")
        engine.checkpoint()
    write_stale_lock(root)
    with SearchEngine.open(root) as engine:  # breaks the stale lock
        assert len(engine.collection) == 1
        engine.add("a document after recovery")
        engine.checkpoint()
