"""Figure 1 as a golden index test: the fragment of the normalized
term-position index for d_w, reproduced by our builder."""

import pytest

from repro.corpus.wine import wine_collection, wine_stats_overrides
from repro.index.builder import build_index

#: Figure 1's rows: token -> (#INDOC, #DOCS, OFFSETS).
FIGURE_1 = {
    "emulator": (1, 2768, (64,)),
    "free": (1, 332_335, (3,)),
    "foss": (1, 2044, (179,)),
    "software": (4, 71_735, (4, 32, 180, 189)),
    "windows": (4, 43_949, (27, 42, 144, 187)),
}


@pytest.fixture(scope="module")
def index():
    return build_index(wine_collection())


@pytest.mark.parametrize("token", sorted(FIGURE_1))
def test_offsets_column(token, index):
    _, _, offsets = FIGURE_1[token]
    assert index.postings(token).positions_in(0) == offsets


@pytest.mark.parametrize("token", sorted(FIGURE_1))
def test_indoc_column(token, index):
    indoc, _, _ = FIGURE_1[token]
    assert index.term_frequency(0, token) == indoc


@pytest.mark.parametrize("token", sorted(FIGURE_1))
def test_docs_column_via_overrides(token):
    """#DOCS is a collection statistic we cannot rebuild from one
    document; the override context carries the paper's numbers."""
    _, docs, _ = FIGURE_1[token]
    assert wine_stats_overrides()["document_frequency"][token] == docs


def test_document_length(index):
    assert index.stats.doc_length(0) == 207
