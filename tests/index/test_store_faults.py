"""Crash-safety sweep: every injected crash point must leave a loadable,
consistent store; every flipped byte must be caught as corruption.

The sweep discovers the full ordered schedule of crash points (each
write, fsync, rename, append, truncate and removal) by running the
scenario once with a recording injector, then re-runs the scenario from
scratch once per point with the injector set to 'die' exactly there —
before any in-process cleanup, like a power loss.  After each simulated
crash:

* ``SearchEngine.load`` must succeed (a reader never needs repair), and
  the visible documents must be a *prefix* of the writes issued — the
  old state or the new state, never a blend, and never losing a
  document whose ``add`` had returned;
* re-opening for writing must repair crash residue (torn WAL tail,
  stale generations) and pass a full ``verify()``; and
* the store must then accept new writes and checkpoints normally.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile

import pytest

from repro.api import SearchEngine
from repro.errors import IndexCorruptionError
from repro.index.store import (
    DOCS_FILE,
    LOCK_NAME,
    MANIFEST_NAME,
    WAL_NAME,
    IndexStore,
    SimulatedCrash,
    StoreFaultInjector,
)

BASE_TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
]
MUTATE_TEXTS = [
    "wal durable document four arrives",
    "post checkpoint document five lands",
]
ALL_TEXTS = BASE_TEXTS + MUTATE_TEXTS


def build_base(root: pathlib.Path) -> None:
    """A store with a checkpointed generation plus one pending WAL doc."""
    with SearchEngine.open(root) as engine:
        engine.add(BASE_TEXTS[0], title="doc0")
        engine.add(BASE_TEXTS[1], title="doc1")
        engine.checkpoint()
        engine.add(BASE_TEXTS[2], title="doc2")


def mutate(root: pathlib.Path, inj: StoreFaultInjector) -> None:
    """The faulted phase: WAL append, checkpoint, WAL append."""
    engine = SearchEngine.open(root, faults=inj)
    engine.add(MUTATE_TEXTS[0], title="doc3")
    engine.checkpoint()
    engine.add(MUTATE_TEXTS[1], title="doc4")
    engine.close()


def discover_schedule() -> list[tuple[str, int]]:
    """Run the scenario unfaulted, recording (point, occurrence) pairs."""
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="graft-store-sweep-"))
    try:
        root = tmp / "store"
        build_base(root)
        recorder = StoreFaultInjector()
        mutate(root, recorder)
        seen: dict[str, int] = {}
        schedule = []
        for point in recorder.points:
            seen[point] = seen.get(point, 0) + 1
            schedule.append((point, seen[point]))
        return schedule
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


SCHEDULE = discover_schedule()


def doc_texts(engine: SearchEngine) -> list[str]:
    return [" ".join(doc.tokens) for doc in engine.collection]


def test_schedule_covers_every_step_kind():
    kinds = {point.split(":", 1)[0] for point, _ in SCHEDULE}
    assert kinds == {"before", "mid", "after"}
    ops = {point.split(":")[1] for point, _ in SCHEDULE}
    assert {"write", "fsync", "fsyncdir", "rename", "append",
            "truncate"} <= ops
    names = {point for point, _ in SCHEDULE}
    assert any(MANIFEST_NAME in n and "rename" in n for n in names)
    assert any(f"mid:append:{WAL_NAME}" == n for n in names)


@pytest.mark.parametrize(
    "point,occurrence",
    SCHEDULE,
    ids=[f"{p}#{k}" for p, k in SCHEDULE],
)
def test_every_crash_point_leaves_consistent_state(tmp_path, point, occurrence):
    root = tmp_path / "store"
    build_base(root)
    inj = StoreFaultInjector(crash_at=point, crash_on_hit=occurrence)
    with pytest.raises(SimulatedCrash):
        mutate(root, inj)
    assert inj.fired, "the targeted crash point was never reached"
    # The 'process' died: its advisory lock is stale (same pid is still
    # alive in this test process, so break it by hand).
    (root / LOCK_NAME).unlink(missing_ok=True)

    # 1. A reader sees a consistent prefix of the issued writes, with
    #    nothing whose add() had returned lost: the base checkpoint and
    #    the base WAL doc must always survive.
    loaded = SearchEngine.load(root)
    texts = doc_texts(loaded)
    assert texts == ALL_TEXTS[: len(texts)]
    assert len(texts) >= len(BASE_TEXTS)
    assert all(r.doc_id < len(texts) for r in loaded.search("quick fox"))

    # 2. A writer repairs residue and passes a full integrity audit.
    with SearchEngine.open(root) as engine:
        assert doc_texts(engine) == texts
        engine.add("recovery write after the crash", title="recovered")
        engine.checkpoint()
    report = IndexStore.open(root).verify()
    assert report["wal_torn_bytes"] == 0
    assert report["doc_count"] == len(texts) + 1

    # 3. And the store keeps working end to end.
    final = SearchEngine.load(root)
    assert doc_texts(final) == texts + ["recovery write after the crash"]


def initial_open_schedule() -> list[tuple[str, int]]:
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="graft-store-init-"))
    try:
        recorder = StoreFaultInjector()
        SearchEngine.open(tmp / "store", faults=recorder).close()
        seen: dict[str, int] = {}
        out = []
        for point in recorder.points:
            seen[point] = seen.get(point, 0) + 1
            out.append((point, seen[point]))
        return out
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


INIT_SCHEDULE = initial_open_schedule()


@pytest.mark.parametrize(
    "point,occurrence",
    INIT_SCHEDULE,
    ids=[f"{p}#{k}" for p, k in INIT_SCHEDULE],
)
def test_crash_during_store_initialization_is_retryable(
    tmp_path, point, occurrence
):
    root = tmp_path / "store"
    inj = StoreFaultInjector(crash_at=point, crash_on_hit=occurrence)
    with pytest.raises(SimulatedCrash):
        SearchEngine.open(root, faults=inj)
    (root / LOCK_NAME).unlink(missing_ok=True)
    with SearchEngine.open(root) as engine:
        engine.add("survived initialization crash")
    assert len(SearchEngine.load(root).collection) == 1


class TestFlippedBytes:
    """Any single flipped byte in any store file is typed corruption."""

    @pytest.fixture
    def store_root(self, tmp_path):
        root = tmp_path / "store"
        build_base(root)
        return root

    def store_files(self, root) -> list[pathlib.Path]:
        store = IndexStore.open(root)
        files = [root / MANIFEST_NAME, store.wal_path]
        files += [store.generation_dir / name
                  for name in sorted(store.manifest.files)]
        return files

    def test_fixture_covers_all_payload_kinds(self, store_root):
        names = {p.name for p in self.store_files(store_root)}
        assert {MANIFEST_NAME, WAL_NAME, "meta.json", "postings.npz",
                DOCS_FILE, "titles.json"} <= names

    @pytest.mark.parametrize("which", range(6))
    @pytest.mark.parametrize("where", ["first", "middle", "last"])
    def test_flip_is_caught_and_names_the_file(self, store_root, which, where):
        target = self.store_files(store_root)[which]
        data = bytearray(target.read_bytes())
        assert data, f"{target} unexpectedly empty"
        offset = {"first": 0, "middle": len(data) // 2,
                  "last": len(data) - 1}[where]
        data[offset] ^= 0x01
        target.write_bytes(bytes(data))
        with pytest.raises(IndexCorruptionError) as info:
            SearchEngine.load(store_root)
        assert target.name in str(info.value)

    def test_flip_in_wal_payload_never_silently_truncates(self, store_root):
        # The dangerous spot: the *length field* of the *last* record.
        # Without a header checksum this flip would read as a torn tail
        # and be dropped silently; it must raise instead.
        wal_path = IndexStore.open(store_root).wal_path
        data = bytearray(wal_path.read_bytes())
        data[8] = ord("f")  # force a huge declared payload length
        wal_path.write_bytes(bytes(data))
        with pytest.raises(IndexCorruptionError, match="header checksum"):
            SearchEngine.load(store_root)
