"""ShardView/ShardedIndex invariants: the slice is physical, the
statistics are global.

The exact-merge guarantee of parallel execution rests on two properties
checked here directly: shard ranges tile the collection disjointly, and
every statistic a scoring scheme can consult answers from the *base*
index (a shard-local df would change idf-style weights and break
score consistency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraftError
from repro.index.shard import ShardedIndex, ShardView


@pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 7, 100])
def test_shards_tile_the_collection(tiny_index, num_shards):
    sharded = ShardedIndex(tiny_index, num_shards)
    assert len(sharded.shards) == num_shards
    assert sharded.shards[0].lo == 0
    assert sharded.shards[-1].hi == tiny_index.num_docs
    for prev, cur in zip(sharded.shards, sharded.shards[1:]):
        assert prev.hi == cur.lo  # contiguous, disjoint
    sizes = [s.hi - s.lo for s in sharded.shards]
    assert max(sizes) - min(sizes) <= 1  # even split


@pytest.mark.parametrize("bad", [0, -1, 2.0, True, "3"])
def test_bad_shard_count_rejected(tiny_index, bad):
    with pytest.raises(GraftError, match="num_shards"):
        ShardedIndex(tiny_index, bad)


def test_postings_slices_partition_the_base_list(tiny_index):
    sharded = ShardedIndex(tiny_index, 3)
    for term in ("quick", "fox", "dog"):
        base = tiny_index.postings(term)
        pieces = [s.postings(term) for s in sharded.shards]
        rejoined = np.concatenate(
            [p.doc_ids for p in pieces if len(p.doc_ids)]
        )
        assert rejoined.tolist() == base.doc_ids.tolist()
        for shard, piece in zip(sharded.shards, pieces):
            assert all(
                shard.lo <= d < shard.hi for d in piece.doc_ids.tolist()
            )


def test_doc_terms_slices_match_base_counts(tiny_index):
    sharded = ShardedIndex(tiny_index, 2)
    base = tiny_index.doc_terms.get("dog")
    assert base is not None
    got = {}
    for shard in sharded.shards:
        piece = shard.doc_terms.get("dog")
        for doc, count in zip(piece.doc_ids.tolist(), piece.counts.tolist()):
            got[doc] = count
    want = dict(zip(base.doc_ids.tolist(), base.counts.tolist()))
    assert got == want


def test_unknown_term_yields_empty_not_error(tiny_index):
    shard = ShardedIndex(tiny_index, 2).shards[0]
    assert len(shard.postings("zzz-absent").doc_ids) == 0
    assert shard.contains_term("zzz-absent") is False


def test_statistics_are_global_not_sliced(tiny_index):
    sharded = ShardedIndex(tiny_index, 3)
    for shard in sharded.shards:
        assert shard.stats is tiny_index.stats
        assert shard.num_docs == tiny_index.num_docs
        assert shard.vocabulary_size() == tiny_index.vocabulary_size()
        for term in ("quick", "fox", "dog"):
            assert (
                shard.document_frequency(term)
                == tiny_index.document_frequency(term)
            )
            assert (
                shard.total_positions(term)
                == tiny_index.total_positions(term)
            )
    # The slice itself is strictly smaller than the global df for a
    # spread-out term — i.e. the global numbers are not an accident.
    df = tiny_index.document_frequency("dog")
    assert any(
        len(s.postings("dog").doc_ids) < df for s in sharded.shards
    )


def test_term_frequency_and_sentences_delegate(tiny_index):
    sharded = ShardedIndex(tiny_index, 2)
    shard = sharded.shard_of(0)
    assert shard.term_frequency(0, "quick") == tiny_index.term_frequency(
        0, "quick"
    )
    assert shard.sentence_starts_of(0) == tiny_index.sentence_starts_of(0)


def test_shard_of(tiny_index):
    sharded = ShardedIndex(tiny_index, 3)
    for doc in range(tiny_index.num_docs):
        shard = sharded.shard_of(doc)
        assert shard.lo <= doc < shard.hi
    with pytest.raises(GraftError, match="outside"):
        sharded.shard_of(tiny_index.num_docs)


def test_contains_term_matches_materialized_slice(tiny_index):
    sharded = ShardedIndex(tiny_index, 4)
    for term in ("quick", "fox", "terrier", "filler"):
        for shard in sharded.shards:
            materialized = len(shard.postings(term).doc_ids) > 0
            assert shard.contains_term(term) == materialized


def test_live_shards_prunes_only_provably_empty(tiny_index):
    sharded = ShardedIndex(tiny_index, tiny_index.num_docs)  # 1 doc/shard
    # No requirements: nothing can be pruned.
    assert sharded.live_shards(frozenset()) == sharded.shards
    # 'terrier' occurs only in doc 3.
    live = sharded.live_shards(frozenset({"terrier"}))
    assert [s.shard_id for s in live] == [3]
    # Conjunctive requirements intersect shard sets.
    both = sharded.live_shards(frozenset({"quick", "fox"}))
    assert all(
        s.contains_term("quick") and s.contains_term("fox") for s in both
    )
    assert sharded.live_shards(frozenset({"zzz-absent"})) == []


def test_empty_index_shards(tiny_collection):
    from repro.corpus.collection import DocumentCollection
    from repro.index.builder import build_index

    empty = build_index(DocumentCollection())
    sharded = ShardedIndex(empty, 3)
    assert all(s.lo == s.hi == 0 for s in sharded.shards)
    assert sharded.live_shards(frozenset({"quick"})) == []
