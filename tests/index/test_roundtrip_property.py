"""Randomized save/load round-trip properties.

For arbitrary corpora — unicode and empty-string terms, empty and
single-document collections — a reloaded engine must return *identical*
search results (doc ids and exact float scores) under every registered
scoring scheme, through both the crash-safe store and the legacy v1
codec.  Plus deterministic edges: offsets far beyond int32.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SearchEngine
from repro.corpus.collection import DocumentCollection
from repro.index.builder import build_index
from repro.index.index import Index
from repro.index.io import load_index, save_index
from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats
from repro.mcalc.builder import all_of, term
from repro.sa.registry import available_schemes

# Lowercase so built query terms (which .lower() their keyword) can hit.
TOKEN_ALPHABET = "abcdéλøß日本語🦊"

tokens = st.text(alphabet=TOKEN_ALPHABET, min_size=0, max_size=6)
documents = st.lists(tokens, min_size=0, max_size=10)
corpora = st.lists(documents, min_size=0, max_size=5)


def make_engine(corpus: list[list[str]]) -> SearchEngine:
    collection = DocumentCollection()
    for i, doc_tokens in enumerate(corpus):
        collection.add_tokens(doc_tokens, title=f"δoc-{i}")
    return SearchEngine(collection)


def queries_for(corpus: list[list[str]]):
    vocab = sorted({t for doc in corpus for t in doc if t})
    picks = vocab[:2] if vocab else ["absent"]
    built = [term(picks[0]).build()]
    if len(picks) > 1:
        built.append(all_of(term(picks[0]), term(picks[1])).build())
    return built


@settings(max_examples=20, deadline=None)
@given(corpus=corpora)
def test_store_round_trip_is_result_identical(corpus):
    tmp = tempfile.mkdtemp(prefix="graft-roundtrip-")
    try:
        engine = make_engine(corpus)
        engine.save(tmp + "/s")
        restored = SearchEngine.load(tmp + "/s")
        assert len(restored.collection) == len(corpus)
        for scheme in available_schemes():
            for query in queries_for(corpus):
                before = [(r.doc_id, r.score, r.title)
                          for r in engine.search(query, scheme=scheme)]
                after = [(r.doc_id, r.score, r.title)
                         for r in restored.search(query, scheme=scheme)]
                assert before == after
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=20, deadline=None)
@given(corpus=corpora)
def test_legacy_v1_round_trip_preserves_postings(corpus):
    tmp = tempfile.mkdtemp(prefix="graft-v1-roundtrip-")
    try:
        collection = DocumentCollection()
        for doc_tokens in corpus:
            collection.add_tokens(doc_tokens)
        index = build_index(collection)
        save_index(index, tmp + "/idx")
        loaded = load_index(tmp + "/idx")
        assert set(loaded.terms) == set(index.terms)
        for t, postings in index.terms.items():
            assert list(loaded.terms[t].doc_ids) == list(postings.doc_ids)
            assert loaded.terms[t].offsets == postings.offsets
        assert list(loaded.stats.doc_lengths) == list(index.stats.doc_lengths)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_empty_engine_round_trips_through_store(tmp_path):
    engine = SearchEngine()
    engine.save(tmp_path / "s")
    restored = SearchEngine.load(tmp_path / "s")
    assert len(restored.collection) == 0
    assert len(restored.search("anything")) == 0


def test_single_document_round_trip(tmp_path):
    engine = SearchEngine()
    engine.add("a single lonely document", title="only")
    engine.save(tmp_path / "s")
    restored = SearchEngine.load(tmp_path / "s")
    (result,) = restored.search("lonely")
    assert (result.doc_id, result.title) == (0, "only")


def test_offsets_beyond_int32_round_trip(tmp_path):
    big = 2 ** 40
    index = Index(
        {"far": PositionPostings(np.asarray([0], dtype=np.int64),
                                 [(big, big + 7)])},
        CollectionStats(np.asarray([big + 8], dtype=np.int64)),
        sentence_starts=[()],
    )
    save_index(index, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx")
    assert loaded.terms["far"].offsets == [(big, big + 7)]
    assert list(loaded.stats.doc_lengths) == [big + 8]
