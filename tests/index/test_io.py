"""Index persistence round-trip tests."""

import numpy as np
import pytest

from repro.errors import IndexCorruptionError, IndexError_
from repro.index.builder import build_index
from repro.index.io import FORMAT_VERSION, load_index, save_index


@pytest.fixture
def saved(tmp_path, tiny_collection):
    index = build_index(tiny_collection)
    save_index(index, tmp_path / "idx")
    return index, tmp_path / "idx"


def test_round_trip_preserves_postings(saved):
    original, path = saved
    loaded = load_index(path)
    assert set(loaded.terms) == set(original.terms)
    for term, postings in original.terms.items():
        other = loaded.terms[term]
        assert list(other.doc_ids) == list(postings.doc_ids)
        assert other.offsets == postings.offsets


def test_round_trip_preserves_stats(saved):
    original, path = saved
    loaded = load_index(path)
    assert loaded.num_docs == original.num_docs
    assert loaded.stats.avg_doc_length == original.stats.avg_doc_length
    assert list(loaded.stats.doc_lengths) == list(original.stats.doc_lengths)


def test_round_trip_preserves_term_document_view(saved):
    original, path = saved
    loaded = load_index(path)
    for term in original.terms:
        assert list(loaded.doc_terms[term].counts) == \
            list(original.doc_terms[term].counts)


def test_search_results_identical_after_reload(saved, tiny_collection):
    from repro.exec.engine import execute, make_runtime
    from repro.graft.optimizer import Optimizer
    from repro.mcalc.parser import parse_query
    from repro.sa.registry import get_scheme

    original, path = saved
    loaded = load_index(path)
    q = parse_query('quick (fox | "lazy dog")')
    scheme = get_scheme("meansum")

    def ranked(index):
        res = Optimizer(scheme, index).optimize(q)
        return execute(res.plan, make_runtime(index, scheme, res.info))

    assert ranked(loaded) == ranked(original)


def test_missing_directory_raises(tmp_path):
    with pytest.raises(IndexError_):
        load_index(tmp_path / "nothing")


def test_version_mismatch_raises(saved, tmp_path):
    import json

    _, path = saved
    meta = json.loads((path / "meta.json").read_text())
    meta["version"] = FORMAT_VERSION + 1
    (path / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(IndexError_):
        load_index(path)


class TestCorruptionHardening:
    """Malformed artifacts surface as IndexCorruptionError naming the
    file — never as raw JSONDecodeError / BadZipFile / KeyError."""

    def test_malformed_meta_json(self, saved):
        _, path = saved
        (path / "meta.json").write_text("{not valid json")
        with pytest.raises(IndexCorruptionError, match="meta.json"):
            load_index(path)

    def test_truncated_npz(self, saved):
        _, path = saved
        arrays = path / "postings.npz"
        arrays.write_bytes(arrays.read_bytes()[:40])
        with pytest.raises(IndexCorruptionError, match="postings.npz"):
            load_index(path)

    def test_non_zip_npz(self, saved):
        _, path = saved
        (path / "postings.npz").write_bytes(b"this is not a zip archive")
        with pytest.raises(IndexCorruptionError, match="postings.npz"):
            load_index(path)

    def test_missing_array_key(self, saved):
        _, path = saved
        with np.load(path / "postings.npz") as npz:
            arrays = {k: npz[k] for k in npz.files if k != "doc_bounds"}
        np.savez_compressed(path / "postings.npz", **arrays)
        with pytest.raises(IndexCorruptionError, match="doc_bounds"):
            load_index(path)

    def test_inconsistent_bounds_arrays(self, saved):
        _, path = saved
        with np.load(path / "postings.npz") as npz:
            arrays = {k: npz[k] for k in npz.files}
        arrays["doc_bounds"] = arrays["doc_bounds"][:-1]
        np.savez_compressed(path / "postings.npz", **arrays)
        with pytest.raises(IndexCorruptionError, match="doc_bounds"):
            load_index(path)

    def test_offset_count_mismatch(self, saved):
        _, path = saved
        with np.load(path / "postings.npz") as npz:
            arrays = {k: npz[k] for k in npz.files}
        arrays["entry_offset_counts"] = arrays["entry_offset_counts"].copy()
        arrays["entry_offset_counts"][0] += 1
        np.savez_compressed(path / "postings.npz", **arrays)
        with pytest.raises(IndexCorruptionError, match="offsets"):
            load_index(path)

    def test_corruption_error_is_an_index_error(self, saved):
        _, path = saved
        (path / "meta.json").write_text("[]")
        with pytest.raises(IndexError_):
            load_index(path)


def test_empty_index_round_trips(tmp_path):
    from repro.corpus.collection import DocumentCollection

    index = build_index(DocumentCollection())
    save_index(index, tmp_path / "empty")
    loaded = load_index(tmp_path / "empty")
    assert loaded.num_docs == 0
    assert loaded.terms == {}
