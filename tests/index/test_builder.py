"""Index builder tests."""

import pytest

from repro.corpus.collection import DocumentCollection
from repro.index.builder import IndexBuilder, build_index


def test_build_from_collection(tiny_collection):
    index = build_index(tiny_collection)
    assert index.num_docs == len(tiny_collection)
    # 'fox' occurs in docs 0, 1, 3, 4, 6 of the tiny collection.
    assert index.document_frequency("fox") == 5


def test_positions_recorded(tiny_collection):
    index = build_index(tiny_collection)
    doc0 = tiny_collection[0]
    assert list(index.postings("quick").positions_in(0)) == doc0.positions_of("quick")


def test_term_frequency_matches_documents(tiny_collection):
    index = build_index(tiny_collection)
    for doc in tiny_collection:
        for term in set(doc.tokens):
            assert index.term_frequency(doc.doc_id, term) == doc.term_frequency(term)


def test_unknown_term_has_empty_postings(tiny_index):
    assert tiny_index.document_frequency("qzxv") == 0
    assert tiny_index.postings("qzxv").positions_in(0) == ()


def test_doc_lengths(tiny_collection, tiny_index):
    for doc in tiny_collection:
        assert tiny_index.stats.doc_length(doc.doc_id) == doc.length


def test_avg_doc_length(tiny_collection, tiny_index):
    expect = tiny_collection.total_tokens / len(tiny_collection)
    assert tiny_index.stats.avg_doc_length == pytest.approx(expect)


def test_out_of_order_ids_rejected():
    builder = IndexBuilder()
    builder.add_document(0, ("a",))
    with pytest.raises(ValueError):
        builder.add_document(2, ("b",))


def test_term_document_index_is_logical_subset(tiny_index):
    """The term-document view must agree with the term-position view."""
    for term, postings in tiny_index.terms.items():
        docs = tiny_index.doc_terms[term]
        assert list(docs.doc_ids) == list(postings.doc_ids)
        assert list(docs.counts) == [len(o) for o in postings.offsets]


def test_empty_collection_index():
    index = build_index(DocumentCollection())
    assert index.num_docs == 0
    assert index.stats.avg_doc_length == 0.0
