"""Packed postings codec: round-trip fidelity, corruption rejection,
and score equivalence with the object substrate.

The packed blob is the substrate worker processes attach to, so its
contract is absolute: decode must reproduce the object index *exactly*
(every doc id, every position tuple, every statistic), every execution
over a :class:`repro.index.packed.PackedIndex` must score bit-identical
to the object index, and any damaged buffer — truncated anywhere, or a
byte flipped inside any checksummed region — must be rejected with
:class:`repro.errors.IndexCorruptionError` rather than decoded into
silently-wrong postings.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.collection import DocumentCollection
from repro.errors import IndexCorruptionError, IndexError_
from repro.exec.engine import execute, make_runtime
from repro.exec.parallel import execute_sharded
from repro.graft.optimizer import Optimizer
from repro.index.builder import build_index
from repro.index.packed import MAGIC, PackedIndex, _pack_frame, pack_index
from repro.index.postings import PositionPostings
from repro.index.shard import ShardedIndex
from repro.mcalc.parser import parse_query
from repro.sa.context import IndexScoringContext
from repro.sa.registry import get_scheme

from tests.conftest import SCHEME_NAMES, TINY_QUERIES


@pytest.fixture(scope="module")
def blob(tiny_index) -> bytes:
    return pack_index(tiny_index)


@pytest.fixture(scope="module")
def packed(blob) -> PackedIndex:
    return PackedIndex(blob, verify=True)


# -- round trip -----------------------------------------------------------


def test_round_trip_statistics(tiny_index, packed):
    assert packed.num_docs == tiny_index.num_docs
    assert packed.vocabulary_size() == tiny_index.vocabulary_size()
    assert packed.stats.num_docs == tiny_index.stats.num_docs
    assert list(packed.stats.doc_lengths) == list(tiny_index.stats.doc_lengths)
    for doc_id in range(tiny_index.num_docs):
        assert packed.sentence_starts_of(doc_id) == \
            tiny_index.sentence_starts_of(doc_id)


def test_round_trip_every_term_every_entry(tiny_index, packed):
    assert sorted(packed.terms) == sorted(tiny_index.terms)
    for term, original in tiny_index.terms.items():
        decoded = packed.postings(term)
        assert list(decoded.doc_ids) == list(original.doc_ids)
        assert [tuple(o) for o in decoded.offsets] == \
            [tuple(o) for o in original.offsets]
        assert decoded.document_frequency == original.document_frequency
        assert decoded.total_positions == original.total_positions
        assert packed.document_frequency(term) == \
            tiny_index.document_frequency(term)
        assert packed.total_positions(term) == \
            tiny_index.total_positions(term)
        for doc_id in list(original.doc_ids) + [0, tiny_index.num_docs - 1]:
            assert decoded.positions_in(doc_id) == \
                original.positions_in(doc_id)
            assert decoded.term_frequency(doc_id) == \
                original.term_frequency(doc_id)
            assert packed.term_frequency(doc_id, term) == \
                tiny_index.term_frequency(doc_id, term)


def test_absent_term_is_empty(packed, tiny_index):
    assert packed.document_frequency("zzz-absent") == 0
    assert packed.total_positions("zzz-absent") == 0
    assert len(packed.postings("zzz-absent")) == 0
    assert packed.term_frequency(0, "zzz-absent") == 0
    assert packed.doc_terms.get("zzz-absent") is None


def test_doc_terms_round_trip(tiny_index, packed):
    for term in tiny_index.terms:
        got = packed.doc_terms.get(term)
        want = tiny_index.doc_terms.get(term)
        assert got is not None and want is not None
        assert list(got.doc_ids) == list(want.doc_ids)
        assert list(got.counts) == list(want.counts)


def test_sliced_is_a_zero_copy_entry_range(tiny_index, packed):
    for term, original in tiny_index.terms.items():
        decoded = packed.postings(term)
        df = decoded.document_frequency
        for a, b in ((0, df), (0, max(0, df - 1)), (1, df), (df, df)):
            if a > b:
                continue
            view = decoded.sliced(a, b)
            assert list(view.doc_ids) == list(original.doc_ids[a:b])
            assert [tuple(o) for o in view.offsets] == \
                [tuple(o) for o in original.offsets[a:b]]
            assert view.document_frequency == b - a
            assert view.total_positions == \
                sum(len(o) for o in original.offsets[a:b])
            for doc_id in list(original.doc_ids):
                assert view.positions_in(doc_id) == (
                    original.positions_in(doc_id)
                    if doc_id in set(int(d) for d in original.doc_ids[a:b])
                    else ()
                )


def test_empty_collection_round_trips():
    index = build_index(DocumentCollection())
    packed = PackedIndex(pack_index(index), verify=True)
    assert packed.num_docs == 0
    assert packed.vocabulary_size() == 0
    assert len(packed.postings("anything")) == 0
    assert packed.sentence_starts_of(0) == ()


def test_unpackable_doc_ids_rejected_at_encode():
    postings = PositionPostings(
        np.array([0, 2**32], dtype=np.int64), [(1,), (2,)]
    )
    with pytest.raises(IndexError_):
        _pack_frame("huge", postings)
    unsorted = PositionPostings(
        np.array([5, 3], dtype=np.int64), [(1,), (2,)]
    )
    with pytest.raises(IndexError_):
        _pack_frame("unsorted", unsorted)


# -- corruption rejection -------------------------------------------------


def _header_len(blob: bytes) -> int:
    (_version, hlen) = struct.unpack_from("<II", blob, 8)
    return hlen


def test_truncation_rejected_at_every_cut(blob):
    hlen = _header_len(blob)
    cuts = sorted({
        0, 4, 8, 12, 15,                 # inside the fixed header
        16 + hlen // 2,                   # inside the JSON directory
        16 + hlen + 2,                    # inside the header CRC
        len(blob) // 2,                   # mid-payload
        len(blob) - 1,                    # one byte short
    })
    for cut in cuts:
        with pytest.raises(IndexCorruptionError):
            PackedIndex(blob[:cut], verify=True)


def test_not_a_packed_blob_rejected(blob):
    with pytest.raises(IndexCorruptionError):
        PackedIndex(b"\x00" * len(blob))
    with pytest.raises(IndexCorruptionError):
        PackedIndex(b"NOTPACK1" + blob[8:])
    # Unsupported version is corruption too, not a silent misread.
    bumped = bytearray(blob)
    bumped[8] = 99
    with pytest.raises(IndexCorruptionError):
        PackedIndex(bytes(bumped))


def test_flipped_byte_rejected_everywhere_checksummed(blob):
    clean = PackedIndex(blob)
    hlen = _header_len(blob)
    offsets = {
        1,                                # magic
        16,                               # first byte of the JSON header
        16 + hlen - 1,                    # last byte of the JSON header
        16 + hlen,                        # header CRC itself
    }
    # One byte inside every statistics section...
    for rel, size in clean._sections.values():
        if size:
            offsets.add(clean._base + rel + size // 2)
    # ...and, for every term frame: the frame head, the frame body and
    # the frame's own CRC.
    for rel, size in clean._directory.values():
        off = clean._base + rel
        offsets.update({off + 1, off + size // 2, off + size - 2})
    assert MAGIC == blob[:8]
    for off in sorted(offsets):
        mutated = bytearray(blob)
        mutated[off] ^= 0xFF
        with pytest.raises(IndexCorruptionError):
            PackedIndex(bytes(mutated), verify=True)


# -- execution equivalence ------------------------------------------------


def _rows(index, scheme, result, ctx):
    runtime = make_runtime(index, scheme, result.info, ctx)
    return execute(result.plan, runtime)


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
def test_packed_execution_bit_identical(
    tiny_collection, tiny_index, tiny_ctx, packed, scheme_name
):
    scheme = get_scheme(scheme_name)
    packed_ctx = IndexScoringContext(packed)
    for text in TINY_QUERIES:
        query = parse_query(text, tiny_collection.analyzer)
        result = Optimizer(scheme, tiny_index).optimize(query)
        serial = _rows(tiny_index, scheme, result, tiny_ctx)
        over_packed = _rows(packed, scheme, result, packed_ctx)
        assert over_packed == serial, (scheme_name, text)


_VOCAB = ("quick", "fox", "dog", "lazy", "brown", "fence", "run")
_PROPERTY_QUERIES = (
    "quick fox",
    '"quick fox"',
    "quick (fox | dog)",
    "fox -dog",
    "(quick fox)ORDER",
)


@settings(max_examples=25, deadline=None)
@given(
    docs=st.lists(
        st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=10),
        min_size=1,
        max_size=10,
    ),
    text=st.sampled_from(_PROPERTY_QUERIES),
    scheme_name=st.sampled_from(SCHEME_NAMES),
    shards=st.sampled_from((2, 3)),
)
def test_packed_scores_property(docs, text, scheme_name, shards):
    """serial/object ≡ serial/packed ≡ thread-sharded/packed, exactly."""
    collection = DocumentCollection()
    for words in docs:
        collection.add_text(" ".join(words))
    index = build_index(collection)
    packed = PackedIndex(pack_index(index), verify=True)
    scheme = get_scheme(scheme_name)
    query = parse_query(text, collection.analyzer)
    result = Optimizer(scheme, index).optimize(query)
    serial = _rows(index, scheme, result, IndexScoringContext(index))
    packed_ctx = IndexScoringContext(packed)
    assert _rows(packed, scheme, result, packed_ctx) == serial
    par = execute_sharded(
        ShardedIndex(packed, shards), result.plan, scheme, result.info,
        packed_ctx,
    )
    assert par.results == serial
