"""Property-based tests on the index data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.collection import DocumentCollection
from repro.index.builder import build_index
from repro.index.io import load_index, save_index
from repro.index.postings import PositionPostings

documents = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=0, max_size=15),
    min_size=0,
    max_size=8,
)


def collection_of(docs):
    col = DocumentCollection()
    for tokens in docs:
        col.add_tokens(tokens)
    return col


@settings(max_examples=60, deadline=None)
@given(docs=documents)
def test_index_agrees_with_documents(docs):
    """Every statistic the index reports must equal recounting the
    documents directly."""
    col = collection_of(docs)
    index = build_index(col)
    vocabulary = col.vocabulary()
    assert set(index.terms) == vocabulary
    for term in vocabulary:
        postings = index.postings(term)
        containing = [d for d in col if d.term_frequency(term)]
        assert list(postings.doc_ids) == [d.doc_id for d in containing]
        for doc in containing:
            assert list(postings.positions_in(doc.doc_id)) == \
                doc.positions_of(term)
        assert postings.total_positions == sum(
            d.term_frequency(term) for d in col
        )


@settings(max_examples=60, deadline=None)
@given(docs=documents, targets=st.lists(st.integers(0, 10), max_size=5))
def test_seek_index_is_lower_bound(docs, targets):
    col = collection_of(docs)
    index = build_index(col)
    for term, postings in index.terms.items():
        ids = list(postings.doc_ids)
        for target in targets:
            i = postings.entry_index_at_or_after(target)
            assert all(d < target for d in ids[:i])
            assert all(d >= target for d in ids[i:])


@settings(max_examples=40, deadline=None)
@given(docs=documents)
def test_doc_id_list_matches_array(docs):
    index = build_index(collection_of(docs))
    for postings in index.terms.values():
        assert postings.doc_id_list == [int(d) for d in postings.doc_ids]


@settings(max_examples=25, deadline=None)
@given(docs=documents)
def test_io_round_trip_any_corpus(docs, tmp_path_factory):
    index = build_index(collection_of(docs))
    path = tmp_path_factory.mktemp("idx")
    save_index(index, path)
    loaded = load_index(path)
    assert set(loaded.terms) == set(index.terms)
    for term, postings in index.terms.items():
        assert loaded.terms[term].offsets == postings.offsets
        assert list(loaded.terms[term].doc_ids) == list(postings.doc_ids)
    assert list(loaded.stats.doc_lengths) == list(index.stats.doc_lengths)


@settings(max_examples=60, deadline=None)
@given(
    by_doc=st.dictionaries(
        st.integers(0, 50),
        st.lists(st.integers(0, 100), min_size=1, max_size=5),
        max_size=8,
    )
)
def test_postings_from_dict_normalizes(by_doc):
    postings = PositionPostings.from_dict(by_doc)
    ids = list(postings.doc_ids)
    assert ids == sorted(by_doc)
    for doc, offsets in zip(ids, postings.offsets):
        assert list(offsets) == sorted(by_doc[doc])
    assert postings.document_frequency == len(by_doc)


@settings(max_examples=60, deadline=None)
@given(docs=documents)
def test_term_document_counts_consistent(docs):
    index = build_index(collection_of(docs))
    for term, doc_postings in index.doc_terms.items():
        positions = index.terms[term]
        assert list(doc_postings.doc_ids) == list(positions.doc_ids)
        assert [int(c) for c in doc_postings.counts] == \
            [len(o) for o in positions.offsets]
        assert int(np.sum(doc_postings.counts)) == positions.total_positions
