"""Generation pins: refcounted GC protection for live readers.

Pins are process-wide and keyed by resolved store path, because the
pinning side (a service's reader) and the GC-ing side (its writer, or a
revival open) are *different* ``IndexStore`` instances over the same
directory.
"""

from __future__ import annotations

from repro.api import SearchEngine
from repro.index.store import IndexStore, pinned_generations


def build(root, generations: int = 1) -> list[str]:
    names = []
    with SearchEngine.open(root) as engine:
        for i in range(generations):
            engine.add(f"document number {i} quick fox")
            names.append(engine.checkpoint())
    return names


def test_pin_defaults_to_current_generation_and_refcounts(tmp_path):
    root = tmp_path / "store"
    build(root)
    store = IndexStore.open(root)
    name = store.pin_generation()
    assert name == store.manifest.generation
    assert pinned_generations(root) == {name}
    # Second pin on the same generation refcounts, not duplicates.
    assert store.pin_generation(name) == name
    store.release_generation(name)
    assert pinned_generations(root) == {name}  # one ref remains
    store.release_generation(name)
    assert pinned_generations(root) == set()


def test_release_without_pin_is_a_noop(tmp_path):
    root = tmp_path / "store"
    build(root)
    store = IndexStore.open(root)
    store.release_generation("gen-000099")  # documented no-op
    assert pinned_generations(root) == set()
    # And an over-release never underflows another holder's pin.
    name = store.pin_generation()
    store.release_generation(name)
    store.release_generation(name)
    assert pinned_generations(root) == set()
    assert store.pin_generation() == name
    store.release_generation(name)


def test_gc_keeps_pinned_old_generation_until_released(tmp_path):
    root = tmp_path / "store"
    build(root)
    # A reader (separate IndexStore instance) pins the current gen.
    reader_store = IndexStore.open(root)
    pinned = reader_store.pin_generation()

    # The writer moves on by two generations; its gc runs each time.
    with SearchEngine.open(root) as writer:
        writer.add("a newer document arrives")
        newer = writer.checkpoint()
        writer.add("an even newer document arrives")
        newest = writer.checkpoint()
    assert pinned not in (newer, newest)

    survivors = {p.name for p in root.iterdir() if p.name.startswith("gen-")}
    assert pinned in survivors  # protected by the pin
    assert newest in survivors  # current manifest generation
    assert newer not in survivors  # unpinned, superseded -> collected

    # The pinned generation is still fully loadable (the reader's view).
    assert IndexStore.open(root).manifest.generation == newest

    # Release + one more gc round collects it.
    reader_store.release_generation(pinned)
    with SearchEngine.open(root):
        pass  # open() runs gc
    survivors = {p.name for p in root.iterdir() if p.name.startswith("gen-")}
    assert pinned not in survivors
    assert newest in survivors


def test_pins_are_shared_across_store_instances_by_resolved_path(tmp_path):
    root = tmp_path / "store"
    build(root)
    a = IndexStore.open(root)
    b = IndexStore.open(tmp_path / "." / "store")  # same dir, odd spelling
    name = a.pin_generation()
    assert pinned_generations(root) == {name}
    b.release_generation(name)  # the *other* instance releases
    assert pinned_generations(root) == set()
