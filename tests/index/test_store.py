"""Durable store behavior: checkpoints, WAL, locking, GC, migration."""

from __future__ import annotations

import json
import os

import pytest

from repro.api import SearchEngine
from repro.corpus.io import save_collection
from repro.errors import (
    GraftError,
    IndexCorruptionError,
    IndexError_,
    StoreLockedError,
)
from repro.index.builder import build_index
from repro.index.io import save_index
from repro.index.store import (
    DOCS_FILE,
    LOCK_NAME,
    MANIFEST_NAME,
    TITLES_FILE,
    WAL_NAME,
    IndexStore,
)
from repro.index.store import wal as wal_mod

from tests.conftest import make_tiny_collection

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
]


def make_store(path, n_docs=2):
    engine = SearchEngine()
    for text in TEXTS[:n_docs]:
        engine.add(text, title=f"doc{len(engine.collection)}")
    engine.save(path)
    return engine


def ranked(engine, query="quick fox"):
    return [(r.doc_id, r.score) for r in engine.search(query)]


class TestCheckpoint:
    def test_save_creates_manifest_and_generation(self, tmp_path):
        make_store(tmp_path / "s")
        store = IndexStore.open(tmp_path / "s")
        assert store.manifest.generation == "gen-000001"
        assert store.manifest.doc_count == 2
        assert set(store.manifest.files) == {
            "meta.json", "postings.npz", DOCS_FILE, TITLES_FILE,
        }

    def test_second_save_advances_generation_and_gcs(self, tmp_path):
        engine = make_store(tmp_path / "s")
        engine.add(TEXTS[2])
        engine.save(tmp_path / "s")
        store = IndexStore.open(tmp_path / "s")
        assert store.manifest.generation == "gen-000002"
        names = {p.name for p in (tmp_path / "s").iterdir()}
        assert "gen-000001" not in names
        assert "gen-000002" in names

    def test_results_identical_after_reload(self, tmp_path):
        engine = SearchEngine(make_tiny_collection())
        before = ranked(engine)
        engine.save(tmp_path / "s")
        assert ranked(SearchEngine.load(tmp_path / "s")) == before

    def test_checkpoint_without_store_raises(self):
        with pytest.raises(GraftError, match="opened on a store"):
            SearchEngine().checkpoint()

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(IndexError_):
            SearchEngine.load(tmp_path / "nope")

    def test_stale_tmp_generation_is_cleaned(self, tmp_path):
        make_store(tmp_path / "s")
        stale = tmp_path / "s" / "gen-000099.tmp"
        stale.mkdir()
        (stale / "junk").write_text("x")
        with SearchEngine.open(tmp_path / "s"):
            pass
        assert not stale.exists()


class TestWal:
    def test_add_is_durable_without_checkpoint(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s") as engine:
            engine.add(TEXTS[2], title="walled")
        # A fresh read-only load replays the WAL.
        loaded = SearchEngine.load(tmp_path / "s")
        assert len(loaded.collection) == 3
        assert loaded.collection[2].title == "walled"
        assert any(r.doc_id == 2 for r in loaded.search("terrier"))

    def test_checkpoint_resets_wal(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s") as engine:
            engine.add(TEXTS[2])
            assert (tmp_path / "s" / WAL_NAME).stat().st_size > 0
            engine.checkpoint()
            assert (tmp_path / "s" / WAL_NAME).stat().st_size == 0
        store = IndexStore.open(tmp_path / "s")
        assert store.manifest.doc_count == 3

    def test_stale_records_below_watermark_are_skipped(self, tmp_path):
        # Simulate a crash between manifest swap and WAL reset: the log
        # still holds records already inside the current generation.
        make_store(tmp_path / "s", n_docs=2)
        store = IndexStore.open(tmp_path / "s")
        wal_mod.append_record(
            store.wal_path,
            {"seq": 0, "title": "stale", "tokens": ["dup"],
             "sentence_starts": []},
        )
        wal_mod.append_record(
            store.wal_path,
            {"seq": 1, "title": "stale", "tokens": ["dup"],
             "sentence_starts": []},
        )
        loaded = SearchEngine.load(tmp_path / "s")
        assert len(loaded.collection) == 2
        assert loaded.collection[0].title != "stale"

    def test_torn_tail_ignored_by_reader_and_repaired_by_writer(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s") as engine:
            engine.add(TEXTS[2], title="kept")
        wal_path = tmp_path / "s" / WAL_NAME
        frame = wal_mod.encode_record(
            {"seq": 3, "title": "torn", "tokens": ["lost"],
             "sentence_starts": []}
        )
        with open(wal_path, "ab") as out:
            out.write(frame[: len(frame) // 2])
        # Reader: complete records replayed, torn tail ignored.
        loaded = SearchEngine.load(tmp_path / "s")
        assert len(loaded.collection) == 3
        # Writer: tail physically truncated, then appends work again.
        with SearchEngine.open(tmp_path / "s") as engine:
            assert len(engine.collection) == 3
            engine.add("fresh addition after repair")
        assert len(SearchEngine.load(tmp_path / "s").collection) == 4

    def test_wal_sequence_gap_is_corruption(self, tmp_path):
        make_store(tmp_path / "s", n_docs=2)
        store = IndexStore.open(tmp_path / "s")
        wal_mod.append_record(
            store.wal_path,
            {"seq": 5, "title": "", "tokens": ["gap"], "sentence_starts": []},
        )
        with pytest.raises(IndexCorruptionError, match="sequence gap"):
            SearchEngine.load(tmp_path / "s")

    def test_mid_wal_corruption_raises_not_truncates(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s") as engine:
            engine.add(TEXTS[2])
            engine.add("one more document here")
        wal_path = tmp_path / "s" / WAL_NAME
        data = bytearray(wal_path.read_bytes())
        data[30] ^= 0xFF  # inside the first record, not the tail
        wal_path.write_bytes(bytes(data))
        with pytest.raises(IndexCorruptionError, match=WAL_NAME):
            SearchEngine.load(tmp_path / "s")


class TestLocking:
    def test_second_writer_rejected(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s"):
            with pytest.raises(StoreLockedError) as info:
                SearchEngine.open(tmp_path / "s")
            assert info.value.holder is not None
            assert str(os.getpid()) in info.value.holder

    def test_lock_released_on_close(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s"):
            assert (tmp_path / "s" / LOCK_NAME).exists()
        assert not (tmp_path / "s" / LOCK_NAME).exists()
        with SearchEngine.open(tmp_path / "s"):
            pass

    def test_stale_lock_from_dead_pid_is_broken(self, tmp_path):
        import socket

        make_store(tmp_path / "s")
        # PIDs wrap well below 2**22 on Linux; this one cannot be alive.
        (tmp_path / "s" / LOCK_NAME).write_text(
            f"999999999@{socket.gethostname()}"
        )
        with SearchEngine.open(tmp_path / "s") as engine:
            assert len(engine.collection) == 2

    def test_foreign_host_lock_is_respected(self, tmp_path):
        make_store(tmp_path / "s")
        (tmp_path / "s" / LOCK_NAME).write_text("1234@another-host")
        with pytest.raises(StoreLockedError):
            SearchEngine.open(tmp_path / "s")

    def test_readers_ignore_the_lock(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s"):
            loaded = SearchEngine.load(tmp_path / "s")
            assert len(loaded.collection) == 2


class TestVerify:
    def test_clean_store_verifies(self, tmp_path):
        make_store(tmp_path / "s")
        report = IndexStore.open(tmp_path / "s").verify()
        assert report["generation"] == "gen-000001"
        assert report["doc_count"] == 2
        assert report["wal_torn_bytes"] == 0

    def test_verify_counts_pending_wal_records(self, tmp_path):
        make_store(tmp_path / "s")
        with SearchEngine.open(tmp_path / "s") as engine:
            engine.add(TEXTS[2])
        report = IndexStore.open(tmp_path / "s").verify()
        assert report["wal_pending"] == 1

    def test_missing_generation_file_is_corruption(self, tmp_path):
        make_store(tmp_path / "s")
        store = IndexStore.open(tmp_path / "s")
        (store.generation_dir / TITLES_FILE).unlink()
        with pytest.raises(IndexCorruptionError, match=TITLES_FILE):
            store.verify()

    def test_unsupported_store_format_is_typed(self, tmp_path):
        from repro.index.store.manifest import Manifest, encode_manifest

        make_store(tmp_path / "s")
        bogus = encode_manifest(
            Manifest(generation="gen-000001", doc_count=2, format=99)
        )
        (tmp_path / "s" / MANIFEST_NAME).write_bytes(bogus)
        with pytest.raises(IndexError_, match="unsupported store format"):
            SearchEngine.load(tmp_path / "s")


class TestLegacyMigration:
    def make_legacy(self, path):
        collection = make_tiny_collection()
        save_index(build_index(collection), path)
        save_collection(collection, path)
        return collection

    def test_legacy_v1_directory_still_loads(self, tmp_path):
        self.make_legacy(tmp_path / "v1")
        assert not IndexStore.is_store(tmp_path / "v1")
        engine = SearchEngine.load(tmp_path / "v1")
        assert ranked(engine) == ranked(SearchEngine(make_tiny_collection()))

    def test_open_migrates_legacy_to_store(self, tmp_path):
        self.make_legacy(tmp_path / "v1")
        with SearchEngine.open(tmp_path / "v1") as engine:
            n = len(engine.collection)
        assert IndexStore.is_store(tmp_path / "v1")
        migrated = SearchEngine.load(tmp_path / "v1")
        assert len(migrated.collection) == n
        assert ranked(migrated) == ranked(SearchEngine(make_tiny_collection()))

    def test_open_fresh_directory_initializes_empty_store(self, tmp_path):
        with SearchEngine.open(tmp_path / "new") as engine:
            assert len(engine.collection) == 0
            engine.add("first ever document")
        loaded = SearchEngine.load(tmp_path / "new")
        assert len(loaded.collection) == 1


class TestTitlesAndPayload:
    def test_titles_round_trip_through_store(self, tmp_path):
        engine = SearchEngine()
        engine.add("quick fox", title="alpha")
        engine.add("lazy dog", title="beta")
        engine.save(tmp_path / "s")
        store = IndexStore.open(tmp_path / "s")
        assert json.loads(store.read_file(TITLES_FILE)) == ["alpha", "beta"]
        loaded = SearchEngine.load(tmp_path / "s")
        assert [r.title for r in loaded.search("quick")] == ["alpha"]
