"""Shared fixtures for the GRAFT reproduction test suite."""

from __future__ import annotations

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.wine import wine_collection, wine_stats_overrides
from repro.index.builder import build_index
from repro.sa.context import IndexScoringContext, OverrideScoringContext
from repro.sa.registry import get_scheme

#: Names of the seven built-in schemes (Section 7).
SCHEME_NAMES = (
    "anysum",
    "sumbest",
    "lucene",
    "join-normalized",
    "event-model",
    "meansum",
    "bestsum-mindist",
)


def make_tiny_collection() -> DocumentCollection:
    """A small hand-written collection with phrases, repeats and overlap,
    designed so the example queries in tests produce varied match tables."""
    col = DocumentCollection()
    col.add_text("the quick brown fox jumps over the lazy dog")
    col.add_text("a quick quick fox and a slow dog walk home")
    col.add_text("dogs and foxes are not the same animal")
    col.add_text("quick release fox terrier dog show dog fox")
    col.add_text("quick fox quick fox dog dog dog lazy")
    col.add_text("nothing relevant here at all just filler words")
    col.add_text("the brown dog naps while the brown fox runs quick")
    return col


#: Query texts exercising conjunction, phrases, disjunction (with and
#: without phrases inside), n-ary predicates and negation.
TINY_QUERIES = (
    "quick fox",
    '"quick fox"',
    "quick (fox | dog)",
    "(quick dog)PROXIMITY[4] fox",
    'quick (fox | "lazy dog") show',
    "(quick fox dog)WINDOW[6]",
    "(quick fox)ORDER",
    "fox -terrier",
)


@pytest.fixture(scope="session")
def tiny_collection() -> DocumentCollection:
    return make_tiny_collection()


@pytest.fixture(scope="session")
def tiny_index(tiny_collection):
    return build_index(tiny_collection)


@pytest.fixture(scope="session")
def tiny_ctx(tiny_index):
    return IndexScoringContext(tiny_index)


@pytest.fixture(scope="session")
def wine_env():
    """(collection, index, ctx) reproducing the paper's Figure 1 numbers."""
    col = wine_collection()
    idx = build_index(col)
    ov = wine_stats_overrides()
    ctx = OverrideScoringContext(
        IndexScoringContext(idx),
        collection_size=ov["collection_size"],
        document_frequency=ov["document_frequency"],
    )
    return col, idx, ctx


@pytest.fixture(params=SCHEME_NAMES)
def scheme(request):
    """Parametrized over all seven built-in schemes."""
    return get_scheme(request.param)


def assert_same_ranking(got, want, tol=1e-7):
    """Rankings agree as doc -> score maps (ties may permute)."""
    gs, ws = dict(got), dict(want)
    assert len(got) == len(gs), "duplicate documents in results"
    assert len(want) == len(ws), "duplicate documents in expectation"
    assert set(gs) == set(ws), (
        f"document sets differ: extra={sorted(set(gs) - set(ws))[:5]} "
        f"missing={sorted(set(ws) - set(gs))[:5]}"
    )
    for doc, want_score in ws.items():
        got_score = gs[doc]
        assert got_score == pytest.approx(want_score, rel=tol, abs=tol), (
            f"doc {doc}: got {got_score}, want {want_score}"
        )
