"""Property-based validation of the Table 2 declarations.

Every optimization-relevant property a scheme declares is checked against
its implementation on randomized scores from the scheme's *reachable*
domain (properties are contextual: e.g. AnySum's alternate combinator
commutes because all alternate scores of one document are equal, and
Join-Normalized sizes are constant down a column).  Directional schemes
are additionally shown to *violate* Definition 3 on a concrete
counterexample — the declarations are tight, not just sufficient.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sa.properties import Associativity
from repro.sa.registry import get_scheme

from tests.conftest import SCHEME_NAMES

finite = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
prob = st.floats(min_value=0.0, max_value=0.999)
count = st.integers(min_value=1, max_value=20)
size = st.floats(min_value=1.0, max_value=9.0)
offsets = st.lists(
    st.integers(min_value=0, max_value=200), min_size=1, max_size=4, unique=True
)


def alt_domain(name: str, shared=None):
    """Scores that can legitimately meet under the alternate combinator.

    ``shared`` carries per-column constants (sizes for join-normalized;
    the single value for the constant AnySum)."""
    if name == "anysum":
        return st.just(shared)
    if name in ("sumbest", "lucene"):
        return finite
    if name == "event-model":
        return prob
    if name == "meansum":
        return st.tuples(finite, count)
    if name == "join-normalized":
        return st.tuples(finite, st.just(shared))
    if name == "bestsum-mindist":
        # Row scores: (score, min distance, positions) — positions are
        # dropped by the alternate combinator.
        return st.tuples(
            finite,
            st.one_of(st.just(math.inf), st.floats(min_value=0, max_value=100)),
            st.just(()),
        )
    raise AssertionError(name)


def shared_constant(name: str, draw_value: float):
    if name == "anysum":
        return draw_value
    if name == "join-normalized":
        return float(int(draw_value) % 8 + 1)
    return None


def canon(name: str, score):
    """Comparison projection (BestSum's alternate combinator drops the
    position list, which carries no score information across matches)."""
    if name == "bestsum-mindist":
        return score[:2]
    return score


def approx_equal(a, b) -> bool:
    if isinstance(a, tuple):
        return len(a) == len(b) and all(approx_equal(x, y) for x, y in zip(a, b))
    if a == b:
        return True
    if isinstance(a, float) and isinstance(b, float):
        if math.isinf(a) or math.isinf(b):
            return a == b
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return False


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=60, deadline=None)
@given(data=st.data(), seed_value=finite)
def test_declared_alt_commutativity(name, data, seed_value):
    scheme = get_scheme(name)
    if not scheme.properties.alt_commutes:
        pytest.skip("not declared")
    shared = shared_constant(name, seed_value)
    dom = alt_domain(name, shared)
    a, b = data.draw(dom), data.draw(dom)
    lhs = canon(name, scheme.alt(a, b))
    rhs = canon(name, scheme.alt(b, a))
    assert approx_equal(lhs, rhs), (a, b, lhs, rhs)


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=60, deadline=None)
@given(data=st.data(), seed_value=finite)
def test_declared_alt_associativity(name, data, seed_value):
    scheme = get_scheme(name)
    if scheme.properties.alt_associates is not Associativity.FULL:
        pytest.skip("not declared fully associative")
    shared = shared_constant(name, seed_value)
    dom = alt_domain(name, shared)
    a, b, c = data.draw(dom), data.draw(dom), data.draw(dom)
    lhs = canon(name, scheme.alt(scheme.alt(a, b), c))
    rhs = canon(name, scheme.alt(a, scheme.alt(b, c)))
    assert approx_equal(lhs, rhs), (a, b, c, lhs, rhs)


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=60, deadline=None)
@given(data=st.data(), seed_value=finite)
def test_declared_alt_idempotency(name, data, seed_value):
    scheme = get_scheme(name)
    if not scheme.properties.alt_idempotent:
        pytest.skip("not declared")
    shared = shared_constant(name, seed_value)
    a = data.draw(alt_domain(name, shared))
    assert approx_equal(canon(name, scheme.alt(a, a)), canon(name, a))


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed_value=finite, k=st.integers(min_value=1, max_value=6))
def test_declared_alt_multiplies(name, data, seed_value, k):
    """times(s, k) must equal folding k equal scores (Section 5.1)."""
    scheme = get_scheme(name)
    if not scheme.properties.alt_multiplies:
        pytest.skip("not declared")
    shared = shared_constant(name, seed_value)
    a = data.draw(alt_domain(name, shared))
    folded = a
    for _ in range(k - 1):
        folded = scheme.alt(folded, a)
    assert approx_equal(canon(name, scheme.times(a, k)), canon(name, folded))


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=60, deadline=None)
@given(data=st.data(), seed_value=finite)
def test_declared_conj_commutativity(name, data, seed_value):
    scheme = get_scheme(name)
    if not scheme.properties.conj_commutes:
        pytest.skip("not declared")
    dom = conj_domain(name, seed_value)
    a, b = data.draw(dom), data.draw(dom)
    assert approx_equal(
        canon(name, scheme.conj(a, b)), canon(name, scheme.conj(b, a))
    )


def conj_domain(name: str, seed_value: float):
    """Conjuncted scores refer to the same match set, hence (for the
    structured schemes) share row counts."""
    if name in ("anysum", "sumbest", "lucene"):
        return finite
    if name == "event-model":
        return prob
    if name == "meansum":
        shared_count = int(seed_value) % 10 + 1
        return st.tuples(finite, st.just(shared_count))
    if name == "join-normalized":
        return st.tuples(finite, size)
    if name == "bestsum-mindist":
        return st.tuples(finite, st.just(math.inf), st.lists(
            st.integers(min_value=0, max_value=100), max_size=3
        ).map(tuple))
    raise AssertionError(name)


class TestDiagonality:
    """Definition 3, both directions: diagonal schemes satisfy it on
    random scores; directional schemes have concrete counterexamples."""

    @pytest.mark.parametrize(
        "name", [n for n in SCHEME_NAMES
                 if get_scheme(n).properties.directional is None]
    )
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), seed_value=finite)
    def test_diagonal_schemes_satisfy_definition_3(self, name, data, seed_value):
        scheme = get_scheme(name)
        shared = shared_constant(name, seed_value)
        if name == "anysum":
            dom = st.just(shared)
        elif name == "meansum":
            shared_count = int(seed_value) % 10 + 1
            dom = st.tuples(finite, st.just(shared_count))
        elif name == "join-normalized":
            dom = st.tuples(finite, st.just(shared))
        else:
            dom = finite
        w, x, y, z = (data.draw(dom) for _ in range(4))
        lhs = scheme.alt(scheme.conj(w, x), scheme.conj(y, z))
        rhs = scheme.conj(scheme.alt(w, y), scheme.alt(x, z))
        assert approx_equal(canon(name, lhs), canon(name, rhs))

    def test_sumbest_violates_definition_3(self):
        """max-then-sum != sum-then-max: the paper's Example 6 in spirit."""
        s = get_scheme("sumbest")
        w, x, y, z = 5.0, 0.0, 0.0, 5.0
        lhs = s.alt(s.conj(w, x), s.conj(y, z))   # max(5, 5) = 5
        rhs = s.conj(s.alt(w, y), s.alt(x, z))    # 5 + 5 = 10
        assert lhs != rhs

    def test_event_model_violates_definition_3(self):
        s = get_scheme("event-model")
        w, x, y, z = 0.9, 0.1, 0.1, 0.9
        lhs = s.alt(s.conj(w, x), s.conj(y, z))
        rhs = s.conj(s.alt(w, y), s.alt(x, z))
        assert abs(lhs - rhs) > 1e-6

    def test_bestsum_violates_definition_3(self):
        s = get_scheme("bestsum-mindist")
        w = (5.0, math.inf, (10,))
        x = (0.0, math.inf, ())
        y = (0.0, math.inf, ())
        z = (5.0, math.inf, (90,))
        lhs = s.alt(s.conj(w, x), s.conj(y, z))
        rhs = s.conj(s.alt(w, y), s.alt(x, z))
        assert canon("bestsum-mindist", lhs) != canon("bestsum-mindist", rhs)


class TestConstantProperty:
    """AnySum is constant: every match of a document scores identically
    (Section 5.1), validated on real matches of a real collection."""

    def test_all_matches_score_equally(self, tiny_collection, tiny_index, tiny_ctx):
        from repro.mcalc.oracle import document_matches
        from repro.mcalc.parser import parse_query
        from repro.mcalc.scoring_plan import derive_scoring_plan, fold_phi

        scheme = get_scheme("anysum")
        q = parse_query("quick (fox | dog)")
        phi = derive_scoring_plan(q)
        for doc in tiny_collection:
            rows = document_matches(q, doc)
            scores = set()
            for row in rows:
                cells = dict(zip(q.free_vars, row[1:]))
                s = fold_phi(
                    phi,
                    lambda v: scheme.alpha(
                        tiny_ctx, doc.doc_id, v, q.var_keywords[v], cells[v]
                    ),
                    scheme.conj,
                    scheme.disj,
                )
                scores.add(round(s, 12))
            assert len(scores) <= 1, (doc.doc_id, scores)

    def test_non_constant_scheme_matches_differ(self, tiny_collection, tiny_ctx):
        from repro.mcalc.oracle import document_matches
        from repro.mcalc.parser import parse_query
        from repro.mcalc.scoring_plan import derive_scoring_plan, fold_phi

        scheme = get_scheme("sumbest")
        q = parse_query("quick (fox | dog)")
        phi = derive_scoring_plan(q)
        differing = 0
        for doc in tiny_collection:
            rows = document_matches(q, doc)
            scores = set()
            for row in rows:
                cells = dict(zip(q.free_vars, row[1:]))
                s = fold_phi(
                    phi,
                    lambda v: scheme.alpha(
                        tiny_ctx, doc.doc_id, v, q.var_keywords[v], cells[v]
                    ),
                    scheme.conj,
                    scheme.disj,
                )
                scores.add(round(s, 12))
            if len(scores) > 1:
                differing += 1
        assert differing > 0
