"""Golden test: the paper's Example 5 MEANSUM walk-through, to the digit."""

import pytest

from repro.mcalc.oracle import document_matches
from repro.mcalc.parser import parse_query
from repro.sa.reference import score_match_table
from repro.sa.registry import get_scheme

Q3 = '(windows emulator)WINDOW[50] (foss | "free software")'


@pytest.fixture(scope="module")
def env():
    from repro.corpus.wine import wine_collection, wine_stats_overrides
    from repro.index.builder import build_index
    from repro.sa.context import IndexScoringContext, OverrideScoringContext

    col = wine_collection()
    ov = wine_stats_overrides()
    ctx = OverrideScoringContext(
        IndexScoringContext(build_index(col)),
        collection_size=ov["collection_size"],
        document_frequency=ov["document_frequency"],
    )
    q = parse_query(Q3)
    rows = document_matches(q, col[0])
    return q, rows, ctx


def test_final_score_is_0660(env):
    """omega(d, <65.086, 4>) = 1 - 1/ln(65.086/4 + e) = 0.660."""
    q, rows, ctx = env
    scheme = get_scheme("meansum")
    score = score_match_table(scheme, ctx, q, 0, rows)
    assert score == pytest.approx(0.660, abs=5e-4)


def test_diagonal_row_equals_column(env):
    """MEANSUM satisfies Definition 3: row-first == column-first."""
    q, rows, ctx = env
    scheme = get_scheme("meansum")
    row_first = score_match_table(scheme, ctx, q, 0, rows, direction="row")
    col_first = score_match_table(scheme, ctx, q, 0, rows, direction="col")
    assert row_first == pytest.approx(col_first)


def test_aggregate_before_finalize_is_65086_over_4(env):
    """The internal aggregate of Example 5: <65.086, 4>."""
    q, rows, ctx = env
    scheme = get_scheme("meansum")
    from repro.mcalc.scoring_plan import derive_scoring_plan, fold_phi

    phi = derive_scoring_plan(q)
    initialized = [
        {
            var: scheme.alpha(ctx, 0, var, q.var_keywords[var], cell)
            for var, cell in zip(q.free_vars, row[1:])
        }
        for row in rows
    ]
    col_scores = {
        var: scheme.fold_alt(s[var] for s in initialized)
        for var in q.free_vars
    }
    aggregate = fold_phi(phi, lambda v: col_scores[v], scheme.conj, scheme.disj)
    assert aggregate[0] == pytest.approx(65.086, abs=5e-2)
    assert aggregate[1] == 4


def test_engine_reproduces_example_5_end_to_end(env, wine_env):
    """The full pipeline — parse, optimize, execute — yields 0.660."""
    _, idx, ctx = wine_env
    from repro.exec.engine import execute, make_runtime
    from repro.graft import Optimizer

    scheme = get_scheme("meansum")
    q = parse_query(Q3)
    result = Optimizer(scheme, idx).optimize(q)
    runtime = make_runtime(idx, scheme, result.info, ctx)
    ((doc, score),) = execute(result.plan, runtime)
    assert doc == 0
    assert score == pytest.approx(0.660, abs=5e-4)
