"""The extra Section-7 scheme instances (AnyProd, KLSum)."""

import pytest

from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.mcalc.parser import parse_query
from repro.sa.reference import rank_with_oracle
from repro.sa.registry import available_schemes, get_scheme
from repro.sa.weighting import bm25, kl_divergence

from tests.conftest import assert_same_ranking


def test_registered():
    assert {"anyprod", "klsum"} <= set(available_schemes())


def test_anyprod_multiplies_term_weights(tiny_ctx):
    s = get_scheme("anyprod")
    assert s.conj(2.0, 3.0) == 6.0
    assert s.disj(2.0, 3.0) == 6.0
    # alpha still BM25, cell-independent (constant scheme).
    assert s.alpha(tiny_ctx, 0, "p0", "fox", None) == bm25(tiny_ctx, 0, "fox")


def test_klsum_uses_language_model_weights(tiny_ctx):
    s = get_scheme("klsum")
    assert s.alpha(tiny_ctx, 4, "p0", "dog", 5) == pytest.approx(
        kl_divergence(tiny_ctx, 4, "dog")
    )


@pytest.mark.parametrize("name", ["anyprod", "klsum"])
def test_extra_schemes_are_constant(name):
    props = get_scheme(name).properties
    assert props.constant
    assert props.diagonal


@pytest.mark.parametrize("name", ["anyprod", "klsum"])
@pytest.mark.parametrize(
    "text", ["quick fox", 'quick (fox | "lazy dog")', "(quick dog)PROXIMITY[4]"]
)
def test_extra_schemes_score_consistent(
    name, text, tiny_collection, tiny_index, tiny_ctx
):
    scheme = get_scheme(name)
    q = parse_query(text)
    res = Optimizer(scheme, tiny_index).optimize(q)
    got = execute(res.plan, make_runtime(tiny_index, scheme, res.info, tiny_ctx))
    want = rank_with_oracle(scheme, tiny_ctx, q, tiny_collection)
    assert_same_ranking(got, want)
    # Constant schemes earn the novel rewrites.
    assert "alternate-elimination" in res.applied


def test_anyprod_and_anysum_rank_differently(tiny_index, tiny_ctx):
    """Products and sums order multi-term documents differently — that is
    the point of supporting both."""
    from repro.exec.engine import execute, make_runtime
    from repro.graft.optimizer import Optimizer

    q = parse_query("quick fox dog")
    rankings = {}
    for name in ("anysum", "anyprod"):
        scheme = get_scheme(name)
        res = Optimizer(scheme, tiny_index).optimize(q)
        rankings[name] = execute(
            res.plan, make_runtime(tiny_index, scheme, res.info, tiny_ctx)
        )
    assert {d for d, _ in rankings["anysum"]} == {d for d, _ in rankings["anyprod"]}
    scores_sum = dict(rankings["anysum"])
    scores_prod = dict(rankings["anyprod"])
    assert any(
        abs(scores_sum[d] - scores_prod[d]) > 1e-9 for d in scores_sum
    )
