"""Term-weighting function tests."""

import math

import pytest

from repro.sa.weighting import bm25, kl_divergence, tfidf, tfidf_meansum


def test_meansum_tfidf_reproduces_example_5(wine_env):
    """alpha(d_w, p4, 179) = (1/207) * (4638535/2044) = 10.96."""
    _, _, ctx = wine_env
    value = tfidf_meansum(ctx, 0, "foss")
    assert value == pytest.approx((1 / 207) * (4_638_535 / 2044))
    assert round(value, 2) == 10.96


def test_meansum_tfidf_column_sums_match_example_5(wine_env):
    """The per-column aggregates quoted in Example 5."""
    _, _, ctx = wine_env
    per_row = {
        "windows": 4 * tfidf_meansum(ctx, 0, "windows"),
        "emulator": 4 * tfidf_meansum(ctx, 0, "emulator"),
        "free": 2 * tfidf_meansum(ctx, 0, "free"),
        "software": 2 * tfidf_meansum(ctx, 0, "software"),
    }
    assert per_row["windows"] == pytest.approx(8.156, abs=5e-3)
    assert per_row["emulator"] == pytest.approx(32.38, abs=5e-2)
    assert per_row["free"] == pytest.approx(0.134, abs=2e-3)
    assert per_row["software"] == pytest.approx(2.498, abs=5e-3)


def test_absent_term_weights_zero(tiny_ctx):
    assert tfidf_meansum(tiny_ctx, 0, "qzxv") == 0.0
    assert tfidf(tiny_ctx, 0, "qzxv") == 0.0
    assert bm25(tiny_ctx, 0, "qzxv") == 0.0
    assert kl_divergence(tiny_ctx, 0, "qzxv") == 0.0


def test_bm25_increases_with_tf(tiny_ctx):
    # 'dog' occurs 3x in doc 4 and 1x in doc 0 of the tiny collection.
    assert bm25(tiny_ctx, 4, "dog") > bm25(tiny_ctx, 0, "dog")


def test_bm25_rewards_rarity(tiny_ctx):
    # 'lazy' (df 2) should outweigh 'dog' (df 5) at equal tf.
    assert bm25(tiny_ctx, 0, "lazy") > bm25(tiny_ctx, 0, "dog")


def test_bm25_positive_for_present_terms(tiny_ctx):
    assert bm25(tiny_ctx, 0, "fox") > 0.0


def test_tfidf_log_scaling(tiny_ctx):
    v1 = tfidf(tiny_ctx, 0, "dog")   # tf 1
    v3 = tfidf(tiny_ctx, 4, "dog")   # tf 3
    assert v3 == pytest.approx(v1 * (1 + math.log(3)))


def test_kl_divergence_positive_and_tf_monotone(tiny_ctx):
    v1 = kl_divergence(tiny_ctx, 0, "dog")
    v3 = kl_divergence(tiny_ctx, 4, "dog")
    assert 0 < v1 < v3
