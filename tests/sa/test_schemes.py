"""Unit tests for the seven scoring schemes of Section 7."""

import math

import pytest

from repro.mcalc.parser import parse_query
from repro.sa.registry import available_schemes, get_scheme
from repro.sa.schemes.bestsum_mindist import min_dist
from repro.sa.weighting import bm25, tfidf_meansum

from tests.conftest import SCHEME_NAMES


def test_all_seven_schemes_registered():
    assert set(SCHEME_NAMES) <= set(available_schemes())


def test_registry_returns_fresh_instances():
    a = get_scheme("anysum")
    b = get_scheme("anysum")
    assert a is not b and a.name == b.name


class TestAnySum:
    scheme = get_scheme("anysum")

    def test_alpha_ignores_cell(self, tiny_ctx):
        s = self.scheme
        by_offset = s.alpha(tiny_ctx, 0, "p0", "fox", 3)
        by_other = s.alpha(tiny_ctx, 0, "p0", "fox", 99)
        by_empty = s.alpha(tiny_ctx, 0, "p0", "fox", None)
        assert by_offset == by_other == by_empty == bm25(tiny_ctx, 0, "fox")

    def test_combinators_sum(self):
        s = self.scheme
        assert s.conj(1.5, 2.0) == 3.5
        assert s.disj(1.5, 2.0) == 3.5

    def test_alt_picks_any(self):
        assert self.scheme.alt(7.0, 7.0) == 7.0

    def test_times_is_identity(self):
        assert self.scheme.times(3.0, 100) == 3.0

    def test_declared_constant(self):
        assert self.scheme.properties.constant


class TestSumBest:
    scheme = get_scheme("sumbest")

    def test_empty_scores_zero(self, tiny_ctx):
        assert self.scheme.alpha(tiny_ctx, 0, "p0", "fox", None) == 0.0

    def test_occurrence_scores_bm25(self, tiny_ctx):
        s = self.scheme.alpha(tiny_ctx, 0, "p0", "fox", 3)
        assert s == bm25(tiny_ctx, 0, "fox")

    def test_alt_is_max(self):
        assert self.scheme.alt(2.0, 5.0) == 5.0

    def test_column_first_declared(self):
        assert self.scheme.properties.directional == "col"


class TestLucene:
    scheme = get_scheme("lucene")

    def test_coincides_with_sumbest_without_predicates(self, tiny_ctx):
        sb = get_scheme("sumbest")
        for cell in (None, 3):
            assert self.scheme.alpha(tiny_ctx, 0, "p0", "fox", cell) == \
                sb.alpha(tiny_ctx, 0, "p0", "fox", cell)

    def test_positional_only_for_proximity_queries(self):
        plain = parse_query("quick fox")
        prox = parse_query("(quick fox)PROXIMITY[5] dog")
        assert self.scheme.positional_vars(plain) == set()
        assert self.scheme.positional_vars(prox) == {"p0", "p1"}

    def test_cell_adjust_tight_match_weighs_one(self):
        q = parse_query("(a b)PROXIMITY[5]")
        (pred,) = q.predicates()
        factors = self.scheme.cell_adjust(None, 0, {"p0": 4, "p1": 5}, (pred,))
        assert factors == {"p0": 1.0, "p1": 1.0}

    def test_cell_adjust_sloppy_match_discounted(self):
        q = parse_query("(a b)PROXIMITY[5]")
        (pred,) = q.predicates()
        factors = self.scheme.cell_adjust(None, 0, {"p0": 4, "p1": 8}, (pred,))
        # span 4, minimal 1 -> slop 3 -> weight 1/4.
        assert factors["p0"] == pytest.approx(0.25)

    def test_cell_adjust_ignores_phrases(self):
        q = parse_query('"a b"')
        (pred,) = q.predicates()
        assert self.scheme.cell_adjust(None, 0, {"p0": 4, "p1": 5}, (pred,)) is None

    def test_cell_adjust_skips_empty_cells(self):
        q = parse_query("(a b)PROXIMITY[5]")
        (pred,) = q.predicates()
        assert self.scheme.cell_adjust(None, 0, {"p0": 4, "p1": None}, (pred,)) is None


class TestJoinNormalized:
    scheme = get_scheme("join-normalized")

    def test_alpha_carries_size(self, tiny_ctx):
        scr, size = self.scheme.alpha(tiny_ctx, 4, "p0", "dog", 5)
        assert scr == pytest.approx(tfidf_meansum(tiny_ctx, 4, "dog"))
        assert size == 3.0  # 'dog' occurs three times in doc 4

    def test_empty_alpha_keeps_occurrence_size(self, tiny_ctx):
        scr, size = self.scheme.alpha(tiny_ctx, 4, "p0", "dog", None)
        assert scr == 0.0 and size == 3.0

    def test_conj_distributes_by_sizes(self):
        out = self.scheme.conj((6.0, 2.0), (8.0, 4.0))
        assert out == (6.0 / 4.0 + 8.0 / 2.0, 8.0)

    def test_conj_zero_size_contributes_nothing(self):
        scr, size = self.scheme.conj((6.0, 0.0), (8.0, 4.0))
        assert scr == 6.0 / 4.0 and size == 0.0

    def test_disj_zero_score_cases(self):
        assert self.scheme.disj((6.0, 2.0), (0.0, 3.0))[0] == 3.0
        assert self.scheme.disj((0.0, 2.0), (6.0, 3.0))[0] == 3.0

    def test_alt_sums_scores_keeps_right_size(self):
        assert self.scheme.alt((1.0, 2.0), (3.0, 2.0)) == (4.0, 2.0)

    def test_omega_projects_score(self, tiny_ctx):
        assert self.scheme.omega(tiny_ctx, 0, (5.5, 99.0)) == 5.5


class TestEventModel:
    scheme = get_scheme("event-model")

    def test_alpha_is_probability(self, tiny_ctx):
        p = self.scheme.alpha(tiny_ctx, 0, "p0", "fox", 3)
        assert 0.0 < p < 1.0
        assert p == pytest.approx(1 - math.exp(-bm25(tiny_ctx, 0, "fox")))

    def test_conj_is_product(self):
        assert self.scheme.conj(0.5, 0.4) == pytest.approx(0.2)

    def test_disj_is_inclusion_exclusion(self):
        assert self.scheme.disj(0.5, 0.4) == pytest.approx(0.7)

    def test_times_matches_folding(self):
        s = 0.3
        folded = s
        for _ in range(4):
            folded = self.scheme.alt(folded, s)
        assert self.scheme.times(s, 5) == pytest.approx(folded)

    def test_row_first_declared(self):
        assert self.scheme.properties.directional == "row"


class TestMeanSum:
    scheme = get_scheme("meansum")

    def test_pseudocode_alpha(self, wine_env):
        _, _, ctx = wine_env
        assert self.scheme.alpha(ctx, 0, "p4", "foss", None) == (0.0, 1)
        scr, count = self.scheme.alpha(ctx, 0, "p4", "foss", 179)
        assert scr == pytest.approx(10.963, abs=1e-3)
        assert count == 1

    def test_alt_adds_sums_and_counts(self):
        assert self.scheme.alt((10.96, 1), (0.0, 1)) == (10.96, 2)

    def test_example_5_column_aggregation(self):
        """(10.96,1)+(0,1)+(10.96,1)+(0,1) = (21.92,4)."""
        s = self.scheme
        col = s.alt(s.alt((10.96, 1), (0.0, 1)), s.alt((10.96, 1), (0.0, 1)))
        assert col == (pytest.approx(21.92), 4)

    def test_conj_keeps_left_count(self):
        assert self.scheme.conj((1.0, 4), (2.0, 4)) == (3.0, 4)

    def test_omega_normalizes(self, tiny_ctx):
        assert self.scheme.omega(tiny_ctx, 0, (65.086, 4)) == pytest.approx(0.660, abs=1e-3)

    def test_times(self):
        assert self.scheme.times((2.0, 3), 4) == (8.0, 12)


class TestBestSumMinDist:
    scheme = get_scheme("bestsum-mindist")

    def test_min_dist(self):
        assert min_dist((3,)) == math.inf
        assert min_dist((3, 10, 12)) == 2.0
        assert min_dist(()) == math.inf

    def test_alpha_tracks_positions(self, tiny_ctx):
        scr, dist, pos = self.scheme.alpha(tiny_ctx, 0, "p0", "fox", 3)
        assert scr > 0 and dist == math.inf and pos == (3,)

    def test_conj_concatenates_positions(self):
        out = self.scheme.conj((1.0, math.inf, (3,)), (2.0, math.inf, (7,)))
        assert out == (3.0, 4.0, (3, 7))

    def test_alt_best_score_min_dist(self):
        out = self.scheme.alt((1.0, 5.0, ()), (2.0, 9.0, ()))
        assert out[:2] == (2.0, 5.0)

    def test_omega_adds_proximity_bonus(self, tiny_ctx):
        near = self.scheme.omega(tiny_ctx, 0, (1.0, 1.0))
        far = self.scheme.omega(tiny_ctx, 0, (1.0, 5.0))
        alone = self.scheme.omega(tiny_ctx, 0, (1.0, math.inf))
        assert near > far > alone == 1.0

    def test_positional_declared(self):
        assert self.scheme.properties.positional
