"""Reference scorer edge cases."""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.mcalc.parser import parse_query
from repro.sa.reference import rank_with_oracle, score_match_table
from repro.sa.registry import get_scheme


def test_empty_rows_rejected(tiny_ctx):
    with pytest.raises(PlanError):
        score_match_table(get_scheme("anysum"), tiny_ctx, parse_query("a"), 0, [])


def test_unknown_direction_rejected(tiny_ctx, tiny_collection):
    q = parse_query("quick")
    rows = [(0, 1)]
    with pytest.raises(PlanError):
        score_match_table(
            get_scheme("anysum"), tiny_ctx, q, 0, rows, direction="diag"
        )


def test_fold_alt_of_nothing_rejected():
    with pytest.raises(ExecutionError):
        get_scheme("anysum").fold_alt([])


def test_default_times_rejects_zero_copies():
    from repro.sa.scheme import ScoringScheme

    with pytest.raises(ExecutionError):
        ScoringScheme.times(get_scheme("meansum"), (1.0, 1), 0)


def test_default_times_folds():
    from repro.sa.scheme import ScoringScheme

    scheme = get_scheme("event-model")
    assert ScoringScheme.times(scheme, 0.25, 3) == pytest.approx(
        scheme.alt(scheme.alt(0.25, 0.25), 0.25)
    )


def test_cell_adjust_rejects_structured_scores(tiny_ctx):
    """The positional-adjust hook is only defined for float scores; a
    scheme combining it with tuple scores is a contract violation."""
    from repro.mcalc.ast import Pred
    from repro.sa.reference import _scale

    with pytest.raises(PlanError):
        _scale((1.0, 2), 0.5)


def test_oracle_ranking_sorted(tiny_ctx, tiny_collection):
    ranking = rank_with_oracle(
        get_scheme("sumbest"), tiny_ctx, parse_query("dog"), tiny_collection
    )
    scores = [s for _, s in ranking]
    assert scores == sorted(scores, reverse=True)


def test_oracle_excludes_non_matching_documents(tiny_ctx, tiny_collection):
    ranking = rank_with_oracle(
        get_scheme("sumbest"), tiny_ctx, parse_query("terrier"), tiny_collection
    )
    assert [d for d, _ in ranking] == [3]
