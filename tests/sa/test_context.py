"""Scoring context tests."""

from repro.sa.context import IndexScoringContext, OverrideScoringContext


def test_index_context_reads_index(tiny_index, tiny_ctx):
    assert tiny_ctx.collection_size() == tiny_index.num_docs
    assert tiny_ctx.document_frequency("fox") == tiny_index.document_frequency("fox")
    assert tiny_ctx.term_frequency(4, "dog") == 3
    assert tiny_ctx.doc_length(0) == 9


def test_override_collection_size(tiny_ctx):
    ctx = OverrideScoringContext(tiny_ctx, collection_size=10**6)
    assert ctx.collection_size() == 10**6
    # Everything else falls through.
    assert ctx.doc_length(0) == tiny_ctx.doc_length(0)


def test_override_document_frequency(tiny_ctx):
    ctx = OverrideScoringContext(tiny_ctx, document_frequency={"fox": 12345})
    assert ctx.document_frequency("fox") == 12345
    assert ctx.document_frequency("dog") == tiny_ctx.document_frequency("dog")


def test_override_avg_doc_length(tiny_ctx):
    ctx = OverrideScoringContext(tiny_ctx, avg_doc_length=99.0)
    assert ctx.avg_doc_length() == 99.0


def test_wine_context_reproduces_paper_numbers(wine_env):
    _, _, ctx = wine_env
    assert ctx.collection_size() == 4_638_535
    assert ctx.document_frequency("software") == 71_735
    assert ctx.doc_length(0) == 207
    assert ctx.term_frequency(0, "windows") == 4
