"""Quickstart: index documents, pick a scoring scheme, search.

Run:  python examples/quickstart.py
"""

from repro import SearchEngine, available_schemes

DOCUMENTS = [
    ("Wine (software)",
     "wine is a free and open source compatibility layer a windows "
     "emulator capable of running windows software on unix systems"),
    ("Emulator",
     "an emulator is hardware or software that enables one computer "
     "to behave like another computer system"),
    ("Free software",
     "free software or foss is software distributed under terms that "
     "allow users to run study change and distribute it"),
    ("Window (architecture)",
     "a window is an opening in a wall that allows light and air to "
     "pass through often fitted with glass"),
    ("Windows emulator guide",
     "this guide compares every windows emulator for running legacy "
     "software including free software options and foss projects"),
]


def main() -> None:
    engine = SearchEngine()
    for title, text in DOCUMENTS:
        engine.add(text, title=title)

    # ----- a simple keyword search -------------------------------------
    print("== keyword search: 'windows emulator' (BM25 SumBest) ==")
    for result in engine.search("windows emulator", scheme="sumbest"):
        print(f"  {result.score:8.4f}  [{result.doc_id}] {result.title}")

    # ----- full-text power: position predicates -------------------------
    # The paper's Q3/Q8: 'windows' and 'emulator' within a 50-token
    # window, accompanied by 'foss' or the phrase "free software".
    query = '(windows emulator)WINDOW[50] (foss | "free software")'
    print(f"\n== full-text search: {query} ==")
    for result in engine.search(query, scheme="meansum"):
        print(f"  {result.score:8.4f}  [{result.doc_id}] {result.title}")

    # ----- generic scoring: same query, every built-in scheme -----------
    print("\n== one query, seven plug-in scoring schemes ==")
    for scheme in available_schemes():
        outcome = engine.search(query, scheme=scheme, top_k=1)
        if outcome.results:
            best = outcome.results[0]
            print(f"  {scheme:18} -> doc {best.doc_id} ({best.score:.4f})")

    # ----- the optimizer adapts to the scheme ---------------------------
    print("\n== plans differ per scheme (score-consistently) ==")
    for scheme in ("anysum", "meansum", "bestsum-mindist"):
        print(f"\n--- {scheme} ---")
        print(engine.explain(query, scheme=scheme))


if __name__ == "__main__":
    main()
