"""Structure-aware search: the SAMESENTENCE predicate over real sentence
boundaries, plus snippets and persistence.

Section 8: GRAFT "can be easily extended to support such predicates as
SAMESENTENCE or SAMEPARAGRAPH, assuming the index supports sentence and
paragraph offsets" — this library's index does, when documents come
through the sentence-splitting analyzer.

Run:  python examples/sentence_search.py
"""

import tempfile

from repro import SearchEngine
from repro.corpus.analyzer import SentenceAnalyzer
from repro.corpus.collection import DocumentCollection

ARTICLES = [
    ("storms",
     "The hurricane made landfall near the coast. Emergency crews "
     "restored power within days. Flooding damaged several bridges."),
    ("power-grid",
     "Aging infrastructure strains the grid. A hurricane can knock out "
     "power transmission for weeks. Regulators demand better planning."),
    ("history",
     "The town was founded beside the river. Its bridges date to the "
     "previous century. A museum preserves early photographs."),
]


def main() -> None:
    collection = DocumentCollection(analyzer=SentenceAnalyzer())
    engine = SearchEngine(collection)
    for title, text in ARTICLES:
        engine.add(text, title=title)

    # 'hurricane' and 'power' in the SAME SENTENCE: only power-grid
    # qualifies ("A hurricane can knock out transmission..." mentions
    # neither; "hurricane" and "power" co-occur in storms' document but
    # in different sentences).
    query = "(hurricane power)SAMESENTENCE"
    print(f"== {query} ==")
    for result in engine.search(query, scheme="sumbest"):
        print(f"  [{result.doc_id}] {result.title}: "
              f"...{engine.snippet(query, result.doc_id)}...")

    # Same words, document-level co-occurrence: both storm articles match.
    print("\n== hurricane power (anywhere in the document) ==")
    for result in engine.search("hurricane power", scheme="sumbest"):
        print(f"  [{result.doc_id}] {result.title}")

    # Match inspection: which offsets satisfied the query?
    print("\n== matches for the sentence query ==")
    for result in engine.search(query):
        for match in engine.matches(query, result.doc_id, limit=3):
            print(f"  doc {result.doc_id}: {match}")

    # Sentence offsets survive persistence.
    with tempfile.TemporaryDirectory() as tmp:
        engine.save(tmp)
        restored = SearchEngine.load(tmp)
        again = restored.search(query)
        print(f"\nreloaded engine agrees: "
              f"{[r.doc_id for r in again] == [r.doc_id for r in engine.search(query)]}")


if __name__ == "__main__":
    main()
