"""The paper's Section 2 motivation, runnable.

1. Under the legacy score-encapsulated framework (Botev et al. [7]),
   a textbook selection-pushing rewrite changes document scores even
   though the matches are identical: Plan 1 keeps one quarter of the
   'emulator' tuple's score value, Plan 2 keeps all of it.
2. Under GRAFT's score-isolated architecture, the same rewrite (allowed
   for the Join-Normalized scheme per Table 3) leaves the score exactly
   where the canonical plan put it.
3. As a bonus, the MEANSUM worked example (Example 5) reproduces the
   paper's 0.660 score for d_w to the digit.

Run:  python examples/score_consistency.py
"""

from repro.corpus.wine import wine_collection, wine_stats_overrides
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.index.builder import build_index
from repro.legacy.encapsulated import EncapsulatedEngine, join_normalized_sj
from repro.mcalc.ast import Pred
from repro.mcalc.parser import parse_query
from repro.sa.context import IndexScoringContext, OverrideScoringContext
from repro.sa.registry import get_scheme


def legacy_demo(index, ctx) -> None:
    print("== 1. legacy score-encapsulated framework ==")
    engine = EncapsulatedEngine(
        index, ctx, sj=join_normalized_sj,
        initial=lambda ctx, doc, var, kw: 1.0,
    )
    distance = Pred("DISTANCE", ("p1", "p2"), (1,))

    # Plan 1: selection after the joins (canonical order).
    j2 = engine.join(engine.atom("p1", "free"), engine.atom("p2", "software"))
    j1 = engine.join(engine.atom("p0", "emulator"), j2)
    plan1 = engine.select(j1, distance)

    # Plan 2: selection pushed through join J2 (textbook rewrite).
    j2_pushed = engine.select(
        engine.join(engine.atom("p1", "free"), engine.atom("p2", "software")),
        distance,
    )
    plan2 = engine.join(engine.atom("p0", "emulator"), j2_pushed)

    matches1 = {(d, tuple(sorted(b.items()))) for d, b, _ in plan1}
    matches2 = {(d, tuple(sorted(b.items()))) for d, b, _ in plan2}
    print(f"  same matches?  {matches1 == matches2}  ({len(matches1)} match)")
    s1 = engine.document_scores(plan1)[0]
    s2 = engine.document_scores(plan2)[0]
    print(f"  Plan 1 (selection late)   score(d_w) = {s1:.4f}")
    print(f"  Plan 2 (selection pushed) score(d_w) = {s2:.4f}")
    print(f"  scores differ by {abs(s1 - s2):.4f} — the optimizer changed "
          "the ranking!\n")


def graft_demo(index, ctx) -> None:
    print("== 2. GRAFT: same rewrite, same scores ==")
    query = parse_query('emulator "free software"')
    scheme = get_scheme("join-normalized")
    optimizer = Optimizer(scheme, index)

    canonical = optimizer.canonical(query)
    ((doc, s_canonical),) = execute(
        canonical.plan, make_runtime(index, scheme, canonical.info, ctx)
    )
    optimized = optimizer.optimize(query)
    ((_, s_optimized),) = execute(
        optimized.plan, make_runtime(index, scheme, optimized.info, ctx)
    )
    print(f"  rewrites applied: {', '.join(optimized.applied)}")
    print(f"  canonical score(d_w) = {s_canonical:.6f}")
    print(f"  optimized score(d_w) = {s_optimized:.6f}")
    print(f"  score-consistent?  {abs(s_canonical - s_optimized) < 1e-12}\n")


def example_5(index, ctx) -> None:
    print("== 3. Example 5: MEANSUM scores d_w at 0.660 ==")
    query = parse_query('(windows emulator)WINDOW[50] (foss | "free software")')
    scheme = get_scheme("meansum")
    result = Optimizer(scheme, index).optimize(query)
    ((doc, score),) = execute(
        result.plan, make_runtime(index, scheme, result.info, ctx)
    )
    print(f"  score(d_w) = {score:.3f}   (paper: 0.660)")


def main() -> None:
    collection = wine_collection()
    index = build_index(collection)
    overrides = wine_stats_overrides()
    ctx = OverrideScoringContext(
        IndexScoringContext(index),
        collection_size=overrides["collection_size"],
        document_frequency=overrides["document_frequency"],
    )
    legacy_demo(index, IndexScoringContext(index))
    graft_demo(index, ctx)
    example_5(index, ctx)


if __name__ == "__main__":
    main()
