"""Plug-in extensibility: a user-defined scoring scheme and a user-defined
full-text predicate, end to end.

The paper's desideratum (4): the scoring developer declares a handful of
algebraic properties and never touches the optimizer; the optimizer
derives which rewrites stay score-consistent.  We define:

* ``CoverageScheme`` — scores a document by what fraction of the query's
  keywords it actually contains (internal score: (hits, columns) pairs);
* ``SAMEPARAGRAPH`` — a plug-in positional predicate (fixed 100-token
  paragraphs), exactly the kind of extension Section 8 suggests.

Run:  python examples/custom_scoring.py
"""

from repro import SearchEngine, register_scheme
from repro.mcalc.predicates import PredicateImpl, register_predicate
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme


class CoverageScheme(ScoringScheme):
    """score(d) = matched-keyword fraction of the best match.

    Internal score: ``(hits, columns)``; a cell scores (1, 1) when bound,
    (0, 1) when empty.  Conjunction/disjunction add both components
    (every column counted once); the alternate combinator keeps the best
    match.  Diagonal, non-positional, max-based — the optimizer will give
    it eager aggregation and pre-counting automatically.
    """

    name = "coverage"
    properties = SchemeProperties(
        directional=None,
        positional=False,
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=True,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(self, ctx, doc_id, var, keyword, offset):
        return (0, 1) if offset is None else (1, 1)

    def conj(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def disj(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def alt(self, left, right):
        return max(left, right)

    def omega(self, ctx, doc_id, score):
        hits, columns = score
        return hits / columns if columns else 0.0

    def times(self, score, k):
        return score


def paragraph_predicate() -> None:
    register_predicate(PredicateImpl(
        "SAMEPARAGRAPH",
        lambda positions, constants: len({p // 100 for p in positions}) == 1,
        min_vars=2,
        max_vars=None,
        num_constants=0,
        forward_class=True,
    ))


def main() -> None:
    register_scheme(CoverageScheme)
    paragraph_predicate()

    engine = SearchEngine()
    engine.add("databases and query optimization with cost models", "db")
    engine.add("query languages for full text search engines", "ir")
    engine.add(("x " * 95) + "databases with full text search support",
               "late-paragraph")
    engine.add("full text search inside databases with query optimization",
               "both")

    query = "databases (query | search) optimization"
    print(f"== coverage ranking for {query!r} ==")
    outcome = engine.search(query, scheme="coverage")
    for r in outcome:
        print(f"  {r.score:6.3f}  [{r.doc_id}] {r.title}")
    print(f"  rewrites: {', '.join(outcome.applied_optimizations)}")

    # The plug-in predicate composes with everything else.
    query2 = "(databases search)SAMEPARAGRAPH"
    print(f"\n== plug-in predicate: {query2!r} ==")
    for r in engine.search(query2, scheme="coverage"):
        print(f"  {r.score:6.3f}  [{r.doc_id}] {r.title}")
    print("  ('late-paragraph' only matches if both words share a "
          "100-token paragraph)")

    # Score consistency holds for user schemes too.
    optimized = engine.search(query, scheme="coverage")
    canonical = engine.search(query, scheme="coverage", optimize=False)
    same = [(r.doc_id, round(r.score, 12)) for r in optimized] == \
        [(r.doc_id, round(r.score, 12)) for r in canonical]
    print(f"\noptimized == canonical scores? {same}")


if __name__ == "__main__":
    main()
