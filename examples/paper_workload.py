"""The paper's evaluation workload on the synthetic Wikipedia stand-in.

Builds the benchmark corpus, runs queries Q4..Q11 under several schemes
and against the rigid Lucene/Terrier-style baselines, and prints timings
plus top answers — a miniature of the Section 8 evaluation (run the real
thing with ``pytest benchmarks/ --benchmark-only``).

Run:  python examples/paper_workload.py [num_docs]
"""

import sys
import time

from repro.baselines import LuceneLikeEngine, TerrierLikeEngine
from repro.bench.workload import PAPER_QUERIES, RIGID_SUPPORTED, bench_fixture
from repro.errors import UnsupportedQueryError
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.sa.registry import get_scheme


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - start) * 1000


def main() -> None:
    num_docs = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"building synthetic corpus ({num_docs} documents)...")
    fx = bench_fixture(num_docs=num_docs)
    print(f"  {fx.collection.total_tokens} tokens, "
          f"{fx.index.vocabulary_size()} distinct terms\n")

    lucene = LuceneLikeEngine(fx.index)
    terrier = TerrierLikeEngine(fx.index)

    header = (f"{'query':5} {'results':>7} {'graft-lucene':>13} "
              f"{'lucene-like':>12} {'graft-anysum':>13} {'terrier-like':>13}")
    print(header)
    print("-" * len(header))
    for name in sorted(PAPER_QUERIES, key=lambda n: int(n[1:])):
        query = fx.queries[name]
        row = [f"{name:5}"]

        def graft(scheme_name):
            scheme = get_scheme(scheme_name)
            res = Optimizer(scheme, fx.index).optimize(query)
            return execute(res.plan, make_runtime(fx.index, scheme, res.info))

        results, t_gl = timed(lambda: graft("lucene"))
        row.append(f"{len(results):>7}")
        row.append(f"{t_gl:>11.2f}ms")
        if name in RIGID_SUPPORTED:
            _, t_ll = timed(lambda: lucene.search(query))
            row.append(f"{t_ll:>10.2f}ms")
        else:
            row.append(f"{'n/a':>12}")
        _, t_ga = timed(lambda: graft("anysum"))
        row.append(f"{t_ga:>11.2f}ms")
        if name in RIGID_SUPPORTED:
            _, t_tl = timed(lambda: terrier.search(query))
            row.append(f"{t_tl:>11.2f}ms")
        else:
            row.append(f"{'n/a':>13}")
        print(" ".join(row))

    # Show one query in detail.
    name = "Q8"
    print(f"\n== {name}: {PAPER_QUERIES[name]} ==")
    scheme = get_scheme("meansum")
    res = Optimizer(scheme, fx.index).optimize(fx.queries[name])
    ranked = execute(res.plan, make_runtime(fx.index, scheme, res.info))
    print(f"rewrites: {', '.join(res.applied)}")
    for doc, score in ranked[:5]:
        title = fx.collection[doc].title
        print(f"  {score:8.4f}  [{doc}] {title}")

    # And why the baselines cannot run it.
    try:
        lucene.search(fx.queries[name])
    except UnsupportedQueryError as exc:
        print(f"\nlucene-like on {name}: UnsupportedQueryError: {exc}")


if __name__ == "__main__":
    main()
